// Block/morsel vectorized kernels (DESIGN.md §14). Scans run in
// kKernelBlockSize-row blocks: conjunctive equality predicates evaluate into
// 0/1 byte masks via tight branch-free loops the compiler auto-vectorizes,
// masks compact into selection vectors, dense group keys pack a block at a
// time, and the fused FilterGroupAggregate feeds aggregates straight from
// the base table — no materialized intermediate, no per-row std::function.
//
// Loops tagged `// vec-hot` are asserted auto-vectorized by
// tools/check_vectorization.sh (gcc -O3 -fopt-info-vec); keep the tag on the
// `for` line. Loops deliberately left scalar: mask→selection compaction
// (loop-carried index), floating-point accumulation (addition order is part
// of the byte-identity contract with the legacy path), and per-group scatter
// updates (data-dependent indices).

#include "relational/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"
#include "relational/operators_internal.h"

namespace cape {

namespace {

std::atomic<bool> g_vectorized_kernels{true};

using relational_internal::AggState;
using relational_internal::UpdateAggState;
using relational_internal::ValidateAggSpec;
using relational_internal::ValidateColumnIndex;

// ---------------------------------------------------------------------------
// Mask and selection primitives.

int64_t CountMask(const uint8_t* mask, int n) {
  int64_t c = 0;
  for (int i = 0; i < n; ++i) c += mask[i];  // vec-hot
  return c;
}

int64_t CountMaskAndValid(const uint8_t* mask, const uint8_t* valid, int n) {
  int64_t c = 0;
  for (int i = 0; i < n; ++i) c += mask[i] & valid[i];  // vec-hot
  return c;
}

// The 8-byte compares write a same-width temporary: gcc cannot mix
// int64/double loads with byte-mask stores in one vector loop ("no vectype"),
// and baseline SSE2 has no 64-bit integer compare at all (pcmpeqq is SSE4.1).
// Equality therefore runs as a vectorizable XOR — tmp[i] == 0 iff
// data[i] == want — and the zero test folds into the scalar narrowing pass
// back in EvalBlock. The helpers must stay noinline: inlined into the
// switch, gcc forward-propagates the temporary into the narrowing AND and
// recreates exactly the mixed-width loop the temporary exists to avoid.
[[gnu::noinline]] void MaskInt64Eq(const int64_t* data, int64_t want, int n,
                                   uint64_t* tmp) {
  const uint64_t w = static_cast<uint64_t>(want);
  for (int i = 0; i < n; ++i) tmp[i] = static_cast<uint64_t>(data[i]) ^ w;  // vec-hot
}

// Value::Compare's exact equality rule !(x<v) && !(x>v) treats NaN as equal
// to everything and -0.0 as equal to 0.0; a plain == would diverge. Both
// compares vectorize as SSE2 cmppd selects, leaving tmp[i] == 0.0 exactly
// when the row matches; the zero test runs in the scalar narrowing pass.
[[gnu::noinline]] void MaskDoubleEq(const double* data, double want, int n,
                                    double* tmp) {
  for (int i = 0; i < n; ++i) tmp[i] = ((data[i] < want) | (data[i] > want)) ? 1.0 : 0.0;  // vec-hot
}

/// Branch-free mask→selection compaction: every slot is written, the cursor
/// advances only on set mask bytes. Sequential by construction (loop-carried
/// k), so it stays scalar — the win is the absence of a mispredicted branch
/// per row, not SIMD.
int64_t CompactBlock(const uint8_t* mask, int n, int64_t begin, int64_t* out) {
  int64_t k = 0;
  for (int i = 0; i < n; ++i) {
    out[k] = begin + i;
    k += mask[i];
  }
  return k;
}

/// A Column's full arrays viewed as one ColumnChunk, so the in-memory and
/// paged scans share the same per-condition mask kernels (EvalCond).
ColumnChunk ColumnArrays(const Column& col) {
  ColumnChunk ch;
  ch.validity = col.validity_data();
  ch.i64 = col.int64_data();
  ch.f64 = col.double_data();
  ch.codes = col.codes_data();
  ch.null_count = col.null_count();
  return ch;
}

/// Boxes page-local row `i` of `ch` exactly as Column::GetValue would: the
/// chunk arrays mirror the Column layout and `col` supplies the type and
/// (for strings) the resident dictionary.
Value ChunkGetValue(const ColumnChunk& ch, const Column& col, int i) {
  if (ch.validity[i] == 0) return Value::Null();
  switch (col.type()) {
    case DataType::kInt64:
      return Value::Int64(ch.i64[i]);
    case DataType::kDouble:
      return Value::Double(ch.f64[i]);
    case DataType::kString:
      return Value::String(col.DictString(ch.codes[i]));
  }
  return Value::Null();
}

}  // namespace

// ---------------------------------------------------------------------------
// Toggle.

void SetVectorizedKernelsEnabled(bool enabled) {
  g_vectorized_kernels.store(enabled, std::memory_order_relaxed);
}

bool VectorizedKernelsEnabled() {
  return g_vectorized_kernels.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// BlockPredicate.

BlockPredicate::BlockPredicate(const Table& table,
                               const std::vector<std::pair<int, Value>>& conditions) {
  // Compilation rules mirror RowEqualityMatcher's dictionary branch exactly;
  // the vectorized kernels always run on codes (codes are stored regardless
  // of the dictionary-kernel toggle), and never_matches() proofs are
  // toggle-independent facts about the data.
  conds_.reserve(conditions.size());
  for (const auto& [col_idx, value] : conditions) {
    Cond cond;
    cond.col = &table.column(col_idx);
    cond.col_idx = col_idx;
    if (value.is_null()) {
      cond.kind = cond.col->type() == DataType::kString ? Kind::kNullCode
                                                        : Kind::kNullValidity;
    } else if (cond.col->type() == DataType::kString) {
      if (value.type() != DataType::kString) {
        never_matches_ = true;  // numerics order before strings, never equal
        return;
      }
      cond.code = cond.col->FindCode(value.string_value());
      if (cond.code == Column::kNullCode) {
        never_matches_ = true;  // value absent from dictionary: no row matches
        return;
      }
      cond.kind = Kind::kCode;
    } else if (value.type() == DataType::kString) {
      never_matches_ = true;  // string value vs numeric column: never equal
      return;
    } else if (cond.col->type() == DataType::kInt64 &&
               value.type() == DataType::kInt64) {
      cond.kind = Kind::kInt64;
      cond.i64 = value.int64_value();
    } else if (cond.col->type() == DataType::kDouble) {
      cond.kind = Kind::kDoubleEq;
      cond.f64 = value.AsDouble();
    } else {
      cond.kind = Kind::kInt64AsDouble;
      cond.f64 = value.AsDouble();
    }
    conds_.push_back(cond);
  }
}

void BlockPredicate::EvalCond(const Cond& cond, const ColumnChunk& arrays, int64_t begin,
                              int n, uint8_t* mask) {
  // Scratch for the 8-byte compares; see MaskInt64Eq/MaskDoubleEq for why
  // they run through a same-width temporary in a noinline helper. Each case
  // uses exactly one member — never both — so no punning occurs.
  union {
    uint64_t u64[kKernelBlockSize];
    double f64[kKernelBlockSize];
  } tmp;
  switch (cond.kind) {
    case Kind::kCode: {
      const int32_t* codes = arrays.codes + begin;
      const int32_t want = cond.code;
      // kNullCode (-1) never equals a real code, so no separate null check.
      for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(codes[i] == want);  // vec-hot
      break;
    }
    case Kind::kNullCode: {
      const int32_t* codes = arrays.codes + begin;
      for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(codes[i] < 0);  // vec-hot
      break;
    }
    case Kind::kNullValidity: {
      const uint8_t* valid = arrays.validity + begin;
      for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(valid[i] ^ 1);  // vec-hot
      break;
    }
    case Kind::kInt64: {
      MaskInt64Eq(arrays.i64 + begin, cond.i64, n, tmp.u64);
      // NULL slots store 0, so a want==0 condition needs the validity AND;
      // the cached null count skips it for fully-valid columns.
      if (arrays.null_count == 0) {
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.u64[i] == 0);
      } else {
        const uint8_t* valid = arrays.validity + begin;
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.u64[i] == 0) & valid[i];
      }
      break;
    }
    case Kind::kDoubleEq: {
      MaskDoubleEq(arrays.f64 + begin, cond.f64, n, tmp.f64);
      if (arrays.null_count == 0) {
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.f64[i] == 0.0);
      } else {
        const uint8_t* valid = arrays.validity + begin;
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.f64[i] == 0.0) & valid[i];
      }
      break;
    }
    case Kind::kInt64AsDouble: {
      // int64 column against a double condition value: the int64→double
      // conversion has no baseline-SSE2 vector form, so this rare shape
      // stays scalar.
      const int64_t* data = arrays.i64 + begin;
      const uint8_t* valid = arrays.validity + begin;
      const double want = cond.f64;
      for (int i = 0; i < n; ++i) {
        const double x = static_cast<double>(data[i]);
        mask[i] &= static_cast<uint8_t>(valid[i] & !(x < want) & !(x > want));
      }
      break;
    }
  }
}

void BlockPredicate::EvalBlock(int64_t begin, int n, uint8_t* mask) const {
  std::memset(mask, 1, static_cast<size_t>(n));
  for (const Cond& cond : conds_) {
    EvalCond(cond, ColumnArrays(*cond.col), begin, n, mask);
  }
}

void BlockPredicate::EvalChunk(const ColumnChunk* chunks, int begin, int n,
                               uint8_t* mask) const {
  std::memset(mask, 1, static_cast<size_t>(n));
  for (const Cond& cond : conds_) {
    EvalCond(cond, chunks[cond.col_idx], begin, n, mask);
  }
}

// ---------------------------------------------------------------------------
// Selection-vector filter and count.

Status FilterEqualsSel(const Table& table,
                       const std::vector<std::pair<int, Value>>& conditions,
                       StopToken* stop, std::vector<int64_t>* sel) {
  sel->clear();
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return Status::OK();
  }
  const int64_t n = table.num_rows();
  uint8_t mask[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    const size_t base = sel->size();
    sel->resize(base + static_cast<size_t>(bn));
    const int64_t k = CompactBlock(mask, bn, b, sel->data() + base);
    sel->resize(base + static_cast<size_t>(k));
  }
  return Status::OK();
}

namespace {

// Defined with the rest of the paged machinery in the fused section below
// (unnamed namespaces in one TU are a single namespace).
Result<int64_t> PagedCountFilterMatches(const Table& table,
                                        const std::vector<std::pair<int, Value>>& conditions,
                                        StopToken* stop);

}  // namespace

Result<int64_t> CountFilterMatches(const Table& table,
                                   const std::vector<std::pair<int, Value>>& conditions,
                                   StopToken* stop) {
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  if (table.UsesPagedScan()) {
    // Page-backed rows: counting must pin pages regardless of the
    // vectorized toggle (there is no row-at-a-time path into a heap file).
    return PagedCountFilterMatches(table, conditions, stop);
  }
  if (!VectorizedKernelsEnabled()) {
    const RowEqualityMatcher matcher(table, conditions);
    if (matcher.never_matches()) {
      if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
      return int64_t{0};
    }
    int64_t count = 0;
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      count += matcher.Matches(row) ? 1 : 0;
    }
    return count;
  }
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return int64_t{0};
  }
  const int64_t n = table.num_rows();
  int64_t count = 0;
  uint8_t mask[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    count += CountMask(mask, bn);
  }
  return count;
}

// ---------------------------------------------------------------------------
// Fused filter→group→aggregate.

namespace {

/// Pre-resolved update shape of one aggregate, so the per-row scatter loop
/// dispatches on a dense enum instead of re-deriving (func, column type)
/// per row. Update arithmetic replicates UpdateAggState exactly — in
/// particular the int64 sum's dual isum/dsum accumulation.
enum class AggKind : uint8_t {
  kCountStar,  // count(*): rows
  kCountCol,   // count(col): non-null rows
  kSumInt64,   // sum/avg over an int64 column
  kSumDouble,  // sum/avg over a double column
  kBoxed,      // min/max: boxed Value comparisons via UpdateAggState
};

struct AggPlan {
  AggKind kind = AggKind::kBoxed;
  const Column* col = nullptr;
  int col_idx = -1;  // chunk index for paged scans (kCountStar: unused)
};

std::vector<AggPlan> CompileAggPlans(const Table& table,
                                     const std::vector<AggregateSpec>& aggs) {
  std::vector<AggPlan> plans;
  plans.reserve(aggs.size());
  for (const AggregateSpec& spec : aggs) {
    AggPlan p;
    if (spec.input_col == AggregateSpec::kCountStar) {
      p.kind = AggKind::kCountStar;
    } else {
      p.col = &table.column(spec.input_col);
      p.col_idx = spec.input_col;
      switch (spec.func) {
        case AggFunc::kCount:
          p.kind = AggKind::kCountCol;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          p.kind = p.col->type() == DataType::kInt64 ? AggKind::kSumInt64
                                                     : AggKind::kSumDouble;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          p.kind = AggKind::kBoxed;
          break;
      }
    }
    plans.push_back(p);
  }
  return plans;
}

void UpdateRowWithPlans(const Table& table, const std::vector<AggregateSpec>& aggs,
                        const std::vector<AggPlan>& plans, int64_t row,
                        std::vector<AggState>* states) {
  for (size_t a = 0; a < plans.size(); ++a) {
    AggState& st = (*states)[a];
    const AggPlan& p = plans[a];
    switch (p.kind) {
      case AggKind::kCountStar:
        ++st.count;
        break;
      case AggKind::kCountCol:
        if (!p.col->IsNull(row)) ++st.count;
        break;
      case AggKind::kSumInt64:
        if (!p.col->IsNull(row)) {
          ++st.count;
          const int64_t v = p.col->GetInt64(row);
          st.isum += v;
          st.dsum += static_cast<double>(v);
        }
        break;
      case AggKind::kSumDouble:
        if (!p.col->IsNull(row)) {
          ++st.count;
          st.dsum += p.col->GetDouble(row);
        }
        break;
      case AggKind::kBoxed:
        UpdateAggState(table, aggs[a], row, &st);
        break;
    }
  }
}

/// Discovered groups in first-seen order — the numbering contract every
/// downstream consumer (and the byte-identity proof vs the legacy path)
/// depends on.
struct GroupTable {
  std::vector<int64_t> representative;        // first base-table row per group
  std::vector<std::vector<AggState>> states;  // [group][agg]
  size_t num_aggs = 0;

  size_t AddGroup(int64_t row) {
    representative.push_back(row);
    states.emplace_back(num_aggs);
    return states.size() - 1;
  }
};

/// Group lookup via a direct-address array — one vector access per row for
/// small mixed-radix key spaces. Templated over the group table so the
/// paged scan (PagedGroupTable boxes representatives at discovery time)
/// shares the sink logic with the in-memory one.
template <typename Groups>
struct DirectSink {
  DirectSink(uint64_t domain, Groups* groups)
      : slots(static_cast<size_t>(domain), -1), groups(groups) {}

  size_t GidFor(uint64_t key, int64_t row) {
    int32_t& slot = slots[static_cast<size_t>(key)];
    if (slot < 0) slot = static_cast<int32_t>(groups->AddGroup(row));
    return static_cast<size_t>(slot);
  }

  std::vector<int32_t> slots;
  Groups* groups;
};

/// Group lookup via an exact uint64-keyed hash map for larger key spaces.
template <typename Groups>
struct MapSink {
  MapSink(size_t expected, Groups* groups) : groups(groups) {
    map.reserve(expected);
  }

  size_t GidFor(uint64_t key, int64_t row) {
    auto [it, fresh] = map.try_emplace(key, groups->states.size());
    if (fresh) groups->AddGroup(row);
    return it->second;
  }

  std::unordered_map<uint64_t, size_t> map;
  Groups* groups;
};

/// One column of the dense mixed-radix packed key (DESIGN.md §10): string
/// columns map onto dictionary codes, narrow int64 columns onto value - base;
/// NULL maps to digit 0.
struct DenseCol {
  const Column* col = nullptr;
  int col_idx = 0;  // chunk index for paged scans
  uint64_t stride = 1;
  int64_t base = 0;  // minimum value for int64 columns
  bool is_string = false;
};

/// Dense-key eligibility and layout, mirroring the legacy GroupByAggregate
/// rules: every group column must be a string or an int64 with a value range
/// narrower than 2^22, and the mixed-radix domain product must fit uint64.
/// `sel` (when non-null) restricts the int64 range scan to the selected rows
/// — exactly the rows the legacy composed path would have materialized.
bool PlanDenseKeys(const Table& table, const std::vector<int>& group_cols,
                   const std::vector<int64_t>* sel, std::vector<DenseCol>* dense,
                   uint64_t* domain_product) {
  if (table.num_rows() >= (int64_t{1} << 31)) return false;
  *domain_product = 1;
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  for (int c : group_cols) {
    const Column& col = table.column(c);
    DenseCol d{&col, c, *domain_product, 0, false};
    uint64_t domain;  // cardinality + 1 slot for NULL
    if (col.type() == DataType::kString) {
      d.is_string = true;
      domain = static_cast<uint64_t>(col.dict_size()) + 1;
    } else if (col.type() == DataType::kInt64) {
      int64_t lo = 0;
      int64_t hi = 0;
      bool any = false;
      for (int64_t j = 0; j < total; ++j) {
        const int64_t row = sel != nullptr ? (*sel)[static_cast<size_t>(j)] : j;
        if (col.IsNull(row)) continue;
        const int64_t v = col.GetInt64(row);
        lo = any ? std::min(lo, v) : v;
        hi = any ? std::max(hi, v) : v;
        any = true;
      }
      const uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      if (width >= (uint64_t{1} << 22)) return false;  // too sparse
      domain = width + 2;
      d.base = lo;
    } else {
      return false;  // double group keys keep the generic encoder
    }
    if (*domain_product > std::numeric_limits<uint64_t>::max() / domain) {
      return false;  // mixed-radix product overflows uint64
    }
    *domain_product *= domain;
    dense->push_back(d);
  }
  return true;
}

/// Packs the mixed-radix keys of rows [begin, begin + n) into keys[0..n).
void PackBlockKeys(const std::vector<DenseCol>& dense, int64_t begin, int n,
                   uint64_t* keys) {
  // gcc idiom-recognizes a zero-fill loop into memset anyway; be explicit.
  std::memset(keys, 0, static_cast<size_t>(n) * sizeof(uint64_t));
  for (const DenseCol& d : dense) {
    const uint64_t stride = d.stride;
    if (d.is_string) {
      const int32_t* codes = d.col->codes_data() + begin;
      for (int i = 0; i < n; ++i) keys[i] += static_cast<uint64_t>(codes[i] + 1) * stride;  // vec-hot
    } else if (d.col->null_count() == 0) {
      const int64_t* data = d.col->int64_data() + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) keys[i] += (static_cast<uint64_t>(data[i]) - base + 1) * stride;  // vec-hot
    } else {
      // Nullable int64: the select between digit 0 (NULL) and value - base
      // mixes byte and quadword lanes, so it stays scalar; the fully-valid
      // fast path above is the common shape.
      const int64_t* data = d.col->int64_data() + begin;
      const uint8_t* valid = d.col->validity_data() + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) {
        keys[i] += (valid[i] != 0 ? static_cast<uint64_t>(data[i]) - base + 1 : 0) * stride;
      }
    }
  }
}

/// Scalar key pack for selection-vector scans (gathered rows defeat SIMD;
/// the filter already shrank the row set).
uint64_t PackKeyScalar(const std::vector<DenseCol>& dense, int64_t row) {
  uint64_t key = 0;
  for (const DenseCol& d : dense) {
    const uint64_t digit =
        d.is_string
            ? static_cast<uint64_t>(d.col->GetCode(row) + 1)  // NULL -> 0
            : (d.col->IsNull(row)
                   ? 0
                   : static_cast<uint64_t>(d.col->GetInt64(row) - d.base) + 1);
    key += digit * d.stride;
  }
  return key;
}

template <typename Sink>
Status DenseScanAllRows(const Table& table, const std::vector<AggregateSpec>& aggs,
                        const std::vector<AggPlan>& plans,
                        const std::vector<DenseCol>& dense, Sink& sink,
                        GroupTable* groups, StopToken* stop) {
  const int64_t n = table.num_rows();
  uint64_t keys[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    PackBlockKeys(dense, b, bn, keys);
    for (int i = 0; i < bn; ++i) {
      const int64_t row = b + i;
      const size_t g = sink.GidFor(keys[i], row);
      UpdateRowWithPlans(table, aggs, plans, row, &groups->states[g]);
    }
  }
  return Status::OK();
}

template <typename Sink>
Status DenseScanSel(const Table& table, const std::vector<AggregateSpec>& aggs,
                    const std::vector<AggPlan>& plans,
                    const std::vector<DenseCol>& dense,
                    const std::vector<int64_t>& sel, Sink& sink, GroupTable* groups,
                    StopToken* stop) {
  for (size_t j = 0; j < sel.size(); ++j) {
    if ((j & (static_cast<size_t>(kStopCheckStride) - 1)) == 0) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    }
    const int64_t row = sel[j];
    const size_t g = sink.GidFor(PackKeyScalar(dense, row), row);
    UpdateRowWithPlans(table, aggs, plans, row, &groups->states[g]);
  }
  return Status::OK();
}

/// Generic fallback (double group keys, wide int ranges, overflowing domain
/// products): byte-encoded keys hashed once per row, collisions resolved by
/// key bytes — the legacy generic path, restricted to `sel` when given and
/// with block-granularity stop checks.
Status EncoderScan(const Table& table, const std::vector<int>& group_cols,
                   const std::vector<AggregateSpec>& aggs,
                   const std::vector<AggPlan>& plans, const std::vector<int64_t>* sel,
                   GroupTable* groups, StopToken* stop) {
  GroupKeyEncoder encoder(table, group_cols);
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  const size_t expected = static_cast<size_t>(total / 4 + 1);
  std::unordered_map<uint64_t, std::vector<size_t>> group_buckets;
  std::vector<std::string> group_keys;
  group_buckets.reserve(expected);
  group_keys.reserve(expected);
  std::string key;
  for (int64_t j = 0; j < total; ++j) {
    if ((j & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int64_t row = sel != nullptr ? (*sel)[static_cast<size_t>(j)] : j;
    key.clear();
    encoder.EncodeRow(row, &key);
    const uint64_t hash = HashBytes(key.data(), key.size());
    std::vector<size_t>& bucket = group_buckets[hash];
    size_t group = groups->states.size();
    for (size_t candidate : bucket) {
      if (group_keys[candidate] == key) {
        group = candidate;
        break;
      }
    }
    if (group == groups->states.size()) {
      bucket.push_back(group);
      group_keys.push_back(key);
      groups->AddGroup(row);
    }
    UpdateRowWithPlans(table, aggs, plans, row, &groups->states[group]);
  }
  return Status::OK();
}

Status GroupScan(const Table& table, const std::vector<int>& group_cols,
                 const std::vector<AggregateSpec>& aggs,
                 const std::vector<AggPlan>& plans, const std::vector<int64_t>* sel,
                 GroupTable* groups, StopToken* stop) {
  std::vector<DenseCol> dense;
  uint64_t domain_product = 1;
  if (!PlanDenseKeys(table, group_cols, sel, &dense, &domain_product)) {
    return EncoderScan(table, group_cols, aggs, plans, sel, groups, stop);
  }
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  // Small key spaces use a direct-address table; larger ones an exact
  // uint64-keyed hash map (same crossover heuristic as the legacy path).
  const uint64_t direct_cap = static_cast<uint64_t>(std::max<int64_t>(total, 1024)) * 4;
  if (domain_product <= direct_cap) {
    DirectSink sink(domain_product, groups);
    return sel != nullptr
               ? DenseScanSel(table, aggs, plans, dense, *sel, sink, groups, stop)
               : DenseScanAllRows(table, aggs, plans, dense, sink, groups, stop);
  }
  MapSink sink(static_cast<size_t>(total / 4 + 1), groups);
  return sel != nullptr
             ? DenseScanSel(table, aggs, plans, dense, *sel, sink, groups, stop)
             : DenseScanAllRows(table, aggs, plans, dense, sink, groups, stop);
}

/// Global aggregation (no group columns): one state vector, aggregates
/// consume the block mask / selection vector directly — count(*) is a mask
/// popcount, count(col) a mask∧validity popcount, sums walk the selection
/// sequentially (floating-point addition order is part of the identity
/// contract with the legacy path).
Status SingleGroupScan(const Table& table, const BlockPredicate& pred,
                       const std::vector<AggregateSpec>& aggs,
                       const std::vector<AggPlan>& plans,
                       std::vector<AggState>* states, StopToken* stop) {
  bool need_sel = false;
  for (const AggPlan& p : plans) {
    if (p.kind != AggKind::kCountStar && p.kind != AggKind::kCountCol) need_sel = true;
  }
  const int64_t n = table.num_rows();
  uint8_t mask[kKernelBlockSize];
  int64_t selbuf[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    int64_t k = 0;
    if (need_sel) k = CompactBlock(mask, bn, b, selbuf);
    for (size_t a = 0; a < plans.size(); ++a) {
      AggState& st = (*states)[a];
      const AggPlan& p = plans[a];
      switch (p.kind) {
        case AggKind::kCountStar:
          st.count += CountMask(mask, bn);
          break;
        case AggKind::kCountCol:
          st.count += p.col->null_count() == 0
                          ? CountMask(mask, bn)
                          : CountMaskAndValid(mask, p.col->validity_data() + b, bn);
          break;
        case AggKind::kSumInt64:
          for (int64_t j = 0; j < k; ++j) {
            const int64_t row = selbuf[j];
            if (p.col->IsNull(row)) continue;
            ++st.count;
            const int64_t v = p.col->GetInt64(row);
            st.isum += v;
            st.dsum += static_cast<double>(v);
          }
          break;
        case AggKind::kSumDouble:
          for (int64_t j = 0; j < k; ++j) {
            const int64_t row = selbuf[j];
            if (p.col->IsNull(row)) continue;
            ++st.count;
            st.dsum += p.col->GetDouble(row);
          }
          break;
        case AggKind::kBoxed:
          for (int64_t j = 0; j < k; ++j) {
            UpdateAggState(table, aggs[a], selbuf[j], &st);
          }
          break;
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Paged scans (DESIGN.md §15). A page-backed table (Table::UsesPagedScan())
// is scanned pin-page → block loops over its chunks → unpin; the kernels
// below mirror their in-memory twins row for row. Byte-identity argument:
// both paths visit rows in ascending global order, number groups in
// first-seen order (any injective keying yields the same numbering),
// accumulate floating-point sums in that same order, and box values with
// identical semantics — so the output tables are byte-identical.

/// Drives a sequential page scan: pins each page (prefetching the next),
/// hands its view to `fn`, and unpins via PageRef. Stop checks run per page
/// in addition to fn's per-block checks.
template <typename Fn>
Status ScanPages(const Table& table, StopToken* stop, Fn&& fn) {
  PageSource& src = *table.page_source();
  const int64_t pages = src.num_pages();
  for (int64_t p = 0; p < pages; ++p) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    CAPE_ASSIGN_OR_RETURN(PageRef ref, src.Pin(p));
    // Prefetch the successor while p is pinned: with >= 2 frames the next
    // Pin hits; with a single frame the hint is skipped (the only frame is
    // pinned), so a minimal budget never double-reads.
    if (p + 1 < pages) src.Prefetch(p + 1);
    CAPE_RETURN_IF_ERROR(fn(ref.view()));
  }
  return Status::OK();
}

/// Paged twin of GroupTable: group-column values are boxed at discovery
/// time (while the page is pinned — it may be evicted before finalize), in
/// place of the representative row index the in-memory path re-reads later.
struct PagedGroupTable {
  std::vector<Row> reps;                      // boxed group values, first-seen order
  std::vector<std::vector<AggState>> states;  // [group][agg]
  size_t num_aggs = 0;
  const Table* table = nullptr;
  const std::vector<int>* group_cols = nullptr;
  const ColumnChunk* chunks = nullptr;  // current page; set by the scan loop

  size_t AddGroup(int64_t local_row) {
    Row rep;
    rep.reserve(group_cols->size());
    for (int c : *group_cols) {
      rep.push_back(ChunkGetValue(chunks[c], table->column(c), static_cast<int>(local_row)));
    }
    reps.push_back(std::move(rep));
    states.emplace_back(num_aggs);
    return states.size() - 1;
  }
};

/// Min/max update from a pinned page, replicating UpdateAggState's boxed
/// branch (count increment included, first-seen value kept on ties).
void UpdateChunkBoxed(const Table& table, const AggregateSpec& spec,
                      const ColumnChunk* chunks, int i, AggState* st) {
  Value v = ChunkGetValue(chunks[spec.input_col], table.column(spec.input_col), i);
  if (v.is_null()) return;
  ++st->count;
  if (spec.func == AggFunc::kMin) {
    if (st->min_value.is_null() || v < st->min_value) st->min_value = std::move(v);
  } else if (spec.func == AggFunc::kMax) {
    if (st->max_value.is_null() || st->max_value < v) st->max_value = std::move(v);
  }
}

/// UpdateRowWithPlans twin reading page chunks at page-local row `i`.
void UpdateChunkWithPlans(const Table& table, const std::vector<AggregateSpec>& aggs,
                          const std::vector<AggPlan>& plans, const ColumnChunk* chunks,
                          int i, std::vector<AggState>* states) {
  for (size_t a = 0; a < plans.size(); ++a) {
    AggState& st = (*states)[a];
    const AggPlan& p = plans[a];
    switch (p.kind) {
      case AggKind::kCountStar:
        ++st.count;
        break;
      case AggKind::kCountCol:
        if (chunks[p.col_idx].validity[i] != 0) ++st.count;
        break;
      case AggKind::kSumInt64: {
        const ColumnChunk& ch = chunks[p.col_idx];
        if (ch.validity[i] != 0) {
          ++st.count;
          const int64_t v = ch.i64[i];
          st.isum += v;
          st.dsum += static_cast<double>(v);
        }
        break;
      }
      case AggKind::kSumDouble: {
        const ColumnChunk& ch = chunks[p.col_idx];
        if (ch.validity[i] != 0) {
          ++st.count;
          st.dsum += ch.f64[i];
        }
        break;
      }
      case AggKind::kBoxed:
        UpdateChunkBoxed(table, aggs[a], chunks, i, &st);
        break;
    }
  }
}

/// Dense-key layout for a paged scan. Unlike PlanDenseKeys it cannot scan
/// rows for int64 ranges, so it uses the file-global column min/max (paged
/// stats for non-resident tables). The resulting radix layout can differ
/// from the in-memory plan's — harmless, since group numbering depends only
/// on first-seen order under an injective key, not on the key values.
bool PlanPagedDenseKeys(const Table& table, const std::vector<int>& group_cols,
                        std::vector<DenseCol>* dense, uint64_t* domain_product) {
  if (table.num_rows() >= (int64_t{1} << 31)) return false;
  *domain_product = 1;
  for (int c : group_cols) {
    const Column& col = table.column(c);
    DenseCol d{&col, c, *domain_product, 0, false};
    uint64_t domain;  // cardinality + 1 slot for NULL
    if (col.type() == DataType::kString) {
      d.is_string = true;
      domain = static_cast<uint64_t>(col.dict_size()) + 1;
    } else if (col.type() == DataType::kInt64) {
      const Value mn = col.Min();
      int64_t lo = 0;
      int64_t hi = 0;
      if (!mn.is_null()) {
        lo = mn.int64_value();
        hi = col.Max().int64_value();
      }
      const uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      if (width >= (uint64_t{1} << 22)) return false;  // too sparse
      domain = width + 2;
      d.base = lo;
    } else {
      return false;  // double group keys keep the generic encoder
    }
    if (*domain_product > std::numeric_limits<uint64_t>::max() / domain) {
      return false;  // mixed-radix product overflows uint64
    }
    *domain_product *= domain;
    dense->push_back(d);
  }
  return true;
}

/// PackBlockKeys twin over page chunks (page-local rows [begin, begin+n)).
void PackChunkKeys(const std::vector<DenseCol>& dense, const ColumnChunk* chunks,
                   int begin, int n, uint64_t* keys) {
  std::memset(keys, 0, static_cast<size_t>(n) * sizeof(uint64_t));
  for (const DenseCol& d : dense) {
    const ColumnChunk& ch = chunks[d.col_idx];
    const uint64_t stride = d.stride;
    if (d.is_string) {
      const int32_t* codes = ch.codes + begin;
      for (int i = 0; i < n; ++i) keys[i] += static_cast<uint64_t>(codes[i] + 1) * stride;  // vec-hot
    } else if (ch.null_count == 0) {
      const int64_t* data = ch.i64 + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) keys[i] += (static_cast<uint64_t>(data[i]) - base + 1) * stride;  // vec-hot
    } else {
      const int64_t* data = ch.i64 + begin;
      const uint8_t* valid = ch.validity + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) {
        keys[i] += (valid[i] != 0 ? static_cast<uint64_t>(data[i]) - base + 1 : 0) * stride;
      }
    }
  }
}

/// Scalar chunk key pack for filtered paged scans (mirrors PackKeyScalar).
uint64_t PackKeyScalarChunk(const std::vector<DenseCol>& dense, const ColumnChunk* chunks,
                            int i) {
  uint64_t key = 0;
  for (const DenseCol& d : dense) {
    const ColumnChunk& ch = chunks[d.col_idx];
    const uint64_t digit =
        d.is_string ? static_cast<uint64_t>(ch.codes[i] + 1)  // NULL -> 0
                    : (ch.validity[i] == 0
                           ? 0
                           : static_cast<uint64_t>(ch.i64[i] - d.base) + 1);
    key += digit * d.stride;
  }
  return key;
}

template <typename Sink>
Status PagedDenseScan(const Table& table, const std::vector<AggregateSpec>& aggs,
                      const std::vector<AggPlan>& plans, const std::vector<DenseCol>& dense,
                      const BlockPredicate& pred, Sink& sink, PagedGroupTable* groups,
                      StopToken* stop) {
  return ScanPages(table, stop, [&](const PageView& view) -> Status {
    groups->chunks = view.cols;
    uint64_t keys[kKernelBlockSize];
    uint8_t mask[kKernelBlockSize];
    int64_t selbuf[kKernelBlockSize];
    const int n = view.row_count;
    for (int b = 0; b < n; b += static_cast<int>(kKernelBlockSize)) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = std::min<int>(static_cast<int>(kKernelBlockSize), n - b);
      if (pred.always_matches()) {
        PackChunkKeys(dense, view.cols, b, bn, keys);
        for (int i = 0; i < bn; ++i) {
          const size_t g = sink.GidFor(keys[i], b + i);
          UpdateChunkWithPlans(table, aggs, plans, view.cols, b + i, &groups->states[g]);
        }
      } else {
        pred.EvalChunk(view.cols, b, bn, mask);
        const int64_t k = CompactBlock(mask, bn, b, selbuf);
        for (int64_t j = 0; j < k; ++j) {
          const int i = static_cast<int>(selbuf[j]);  // page-local row
          const size_t g = sink.GidFor(PackKeyScalarChunk(dense, view.cols, i), i);
          UpdateChunkWithPlans(table, aggs, plans, view.cols, i, &groups->states[g]);
        }
      }
    }
    return Status::OK();
  });
}

/// Injective per-row group key from page chunks: '\0' for NULL, else '\1'
/// plus a fixed-width payload (GroupKeyEncoder's compact format). Grouping
/// equality classes match the in-memory encoder's exactly — codes are
/// bijective with strings via the file dictionary, and -0.0 canonicalizes
/// to 0.0 — and only injectivity affects the output bytes.
void EncodeChunkKey(const Table& table, const std::vector<int>& group_cols,
                    const ColumnChunk* chunks, int i, std::string* buf) {
  for (int c : group_cols) {
    const ColumnChunk& ch = chunks[c];
    if (ch.validity[i] == 0) {
      buf->push_back('\0');
      continue;
    }
    buf->push_back('\1');
    switch (table.column(c).type()) {
      case DataType::kInt64: {
        const int64_t v = ch.i64[i];
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        double v = ch.f64[i];
        if (v == 0.0) v = 0.0;  // canonicalize -0.0
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const int32_t code = ch.codes[i];
        buf->append(reinterpret_cast<const char*>(&code), sizeof(code));
        break;
      }
    }
  }
}

/// EncoderScan twin for paged tables (double group keys, wide int ranges,
/// overflowing domain products).
Status PagedEncoderScan(const Table& table, const std::vector<int>& group_cols,
                        const std::vector<AggregateSpec>& aggs,
                        const std::vector<AggPlan>& plans, const BlockPredicate& pred,
                        PagedGroupTable* groups, StopToken* stop) {
  const size_t expected = static_cast<size_t>(table.num_rows() / 4 + 1);
  std::unordered_map<uint64_t, std::vector<size_t>> group_buckets;
  std::vector<std::string> group_keys;
  group_buckets.reserve(expected);
  group_keys.reserve(expected);
  std::string key;
  return ScanPages(table, stop, [&](const PageView& view) -> Status {
    groups->chunks = view.cols;
    uint8_t mask[kKernelBlockSize];
    int64_t selbuf[kKernelBlockSize];
    const int n = view.row_count;
    for (int b = 0; b < n; b += static_cast<int>(kKernelBlockSize)) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = std::min<int>(static_cast<int>(kKernelBlockSize), n - b);
      pred.EvalChunk(view.cols, b, bn, mask);
      const int64_t k = CompactBlock(mask, bn, b, selbuf);
      for (int64_t j = 0; j < k; ++j) {
        const int i = static_cast<int>(selbuf[j]);  // page-local row
        key.clear();
        EncodeChunkKey(table, group_cols, view.cols, i, &key);
        const uint64_t hash = HashBytes(key.data(), key.size());
        std::vector<size_t>& bucket = group_buckets[hash];
        size_t group = groups->states.size();
        for (size_t candidate : bucket) {
          if (group_keys[candidate] == key) {
            group = candidate;
            break;
          }
        }
        if (group == groups->states.size()) {
          bucket.push_back(group);
          group_keys.push_back(key);
          groups->AddGroup(i);
        }
        UpdateChunkWithPlans(table, aggs, plans, view.cols, i, &groups->states[group]);
      }
    }
    return Status::OK();
  });
}

Status PagedGroupScan(const Table& table, const std::vector<int>& group_cols,
                      const std::vector<AggregateSpec>& aggs,
                      const std::vector<AggPlan>& plans, const BlockPredicate& pred,
                      PagedGroupTable* groups, StopToken* stop) {
  std::vector<DenseCol> dense;
  uint64_t domain_product = 1;
  if (!PlanPagedDenseKeys(table, group_cols, &dense, &domain_product)) {
    return PagedEncoderScan(table, group_cols, aggs, plans, pred, groups, stop);
  }
  // Same direct-vs-map crossover as GroupScan, with the full row count as
  // the budget (a filtered paged scan has no pre-computed selection size).
  const uint64_t direct_cap =
      static_cast<uint64_t>(std::max<int64_t>(table.num_rows(), 1024)) * 4;
  if (domain_product <= direct_cap) {
    DirectSink sink(domain_product, groups);
    return PagedDenseScan(table, aggs, plans, dense, pred, sink, groups, stop);
  }
  MapSink sink(static_cast<size_t>(table.num_rows() / 4 + 1), groups);
  return PagedDenseScan(table, aggs, plans, dense, pred, sink, groups, stop);
}

/// SingleGroupScan twin over pages: aggregates consume chunk masks and
/// page-local selections directly; sums accumulate in ascending global row
/// order, so the floating-point sequence matches the in-memory path.
Status PagedSingleGroupScan(const Table& table, const BlockPredicate& pred,
                            const std::vector<AggregateSpec>& aggs,
                            const std::vector<AggPlan>& plans,
                            std::vector<AggState>* states, StopToken* stop) {
  bool need_sel = false;
  for (const AggPlan& p : plans) {
    if (p.kind != AggKind::kCountStar && p.kind != AggKind::kCountCol) need_sel = true;
  }
  return ScanPages(table, stop, [&](const PageView& view) -> Status {
    uint8_t mask[kKernelBlockSize];
    int64_t selbuf[kKernelBlockSize];
    const int n = view.row_count;
    for (int b = 0; b < n; b += static_cast<int>(kKernelBlockSize)) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = std::min<int>(static_cast<int>(kKernelBlockSize), n - b);
      pred.EvalChunk(view.cols, b, bn, mask);
      int64_t k = 0;
      if (need_sel) k = CompactBlock(mask, bn, b, selbuf);  // page-local rows
      for (size_t a = 0; a < plans.size(); ++a) {
        AggState& st = (*states)[a];
        const AggPlan& p = plans[a];
        switch (p.kind) {
          case AggKind::kCountStar:
            st.count += CountMask(mask, bn);
            break;
          case AggKind::kCountCol: {
            const ColumnChunk& ch = view.cols[p.col_idx];
            st.count += ch.null_count == 0
                            ? CountMask(mask, bn)
                            : CountMaskAndValid(mask, ch.validity + b, bn);
            break;
          }
          case AggKind::kSumInt64: {
            const ColumnChunk& ch = view.cols[p.col_idx];
            for (int64_t j = 0; j < k; ++j) {
              const int i = static_cast<int>(selbuf[j]);
              if (ch.validity[i] == 0) continue;
              ++st.count;
              const int64_t v = ch.i64[i];
              st.isum += v;
              st.dsum += static_cast<double>(v);
            }
            break;
          }
          case AggKind::kSumDouble: {
            const ColumnChunk& ch = view.cols[p.col_idx];
            for (int64_t j = 0; j < k; ++j) {
              const int i = static_cast<int>(selbuf[j]);
              if (ch.validity[i] == 0) continue;
              ++st.count;
              st.dsum += ch.f64[i];
            }
            break;
          }
          case AggKind::kBoxed:
            for (int64_t j = 0; j < k; ++j) {
              UpdateChunkBoxed(table, aggs[a], view.cols, static_cast<int>(selbuf[j]), &st);
            }
            break;
        }
      }
    }
    return Status::OK();
  });
}

/// Fused filter→group→aggregate over a paged table; same output contract as
/// the in-memory FilterGroupAggregate below.
Result<TablePtr> PagedFilterGroupAggregate(const Table& table,
                                           const std::vector<std::pair<int, Value>>& conditions,
                                           const std::vector<int>& group_cols,
                                           const std::vector<AggregateSpec>& aggs,
                                           StopToken* stop) {
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  for (int c : group_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
  for (const AggregateSpec& spec : aggs) CAPE_RETURN_IF_ERROR(ValidateAggSpec(table, spec));

  std::vector<Field> out_fields;
  out_fields.reserve(group_cols.size() + aggs.size());
  for (int c : group_cols) out_fields.push_back(table.schema()->field(c));
  for (const AggregateSpec& spec : aggs) {
    out_fields.push_back(
        Field{spec.output_name, relational_internal::AggOutputType(table, spec), true});
  }

  PagedGroupTable groups;
  groups.num_aggs = aggs.size();
  groups.table = &table;
  groups.group_cols = &group_cols;
  const std::vector<AggPlan> plans = CompileAggPlans(table, aggs);
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    // The selection is provably empty without touching a single page.
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
  } else if (group_cols.empty()) {
    groups.reps.emplace_back();
    groups.states.emplace_back(aggs.size());
    CAPE_RETURN_IF_ERROR(
        PagedSingleGroupScan(table, pred, aggs, plans, &groups.states[0], stop));
  } else {
    CAPE_RETURN_IF_ERROR(
        PagedGroupScan(table, group_cols, aggs, plans, pred, &groups, stop));
  }

  // Aggregation without grouping yields exactly one row even on empty input.
  if (group_cols.empty() && groups.states.empty()) {
    groups.reps.emplace_back();
    groups.states.emplace_back(aggs.size());
  }

  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  out->Reserve(static_cast<int64_t>(groups.states.size()));
  Row out_row;
  for (size_t g = 0; g < groups.states.size(); ++g) {
    out_row.clear();
    for (const Value& v : groups.reps[g]) out_row.push_back(v);
    for (size_t a = 0; a < aggs.size(); ++a) {
      out_row.push_back(
          relational_internal::FinalizeAggState(table, aggs[a], groups.states[g][a]));
    }
    CAPE_RETURN_IF_ERROR(out->AppendRow(out_row));
  }
  return out;
}

/// Paged count: block masks over chunks, no materialization.
Result<int64_t> PagedCountFilterMatches(const Table& table,
                                        const std::vector<std::pair<int, Value>>& conditions,
                                        StopToken* stop) {
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return int64_t{0};
  }
  int64_t count = 0;
  CAPE_RETURN_IF_ERROR(ScanPages(table, stop, [&](const PageView& view) -> Status {
    uint8_t mask[kKernelBlockSize];
    const int n = view.row_count;
    for (int b = 0; b < n; b += static_cast<int>(kKernelBlockSize)) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = std::min<int>(static_cast<int>(kKernelBlockSize), n - b);
      pred.EvalChunk(view.cols, b, bn, mask);
      count += CountMask(mask, bn);
    }
    return Status::OK();
  }));
  return count;
}

}  // namespace

Result<TablePtr> FilterGroupAggregate(const Table& table,
                                      const std::vector<std::pair<int, Value>>& conditions,
                                      const std::vector<int>& group_cols,
                                      const std::vector<AggregateSpec>& aggs,
                                      StopToken* stop) {
  if (table.UsesPagedScan()) {
    // Page-backed rows take the paged scan regardless of the vectorized
    // toggle: the in-memory paths (legacy included) read Column arrays that
    // a non-resident table does not have. Equivalence fixtures compare this
    // path against both in-memory modes on resident A/B tables.
    return PagedFilterGroupAggregate(table, conditions, group_cols, aggs, stop);
  }
  if (!VectorizedKernelsEnabled()) {
    // Legacy two-operator composition: the A/B baseline the fused path is
    // proven byte-identical against.
    CAPE_ASSIGN_OR_RETURN(TablePtr selected, FilterEquals(table, conditions, stop));
    return GroupByAggregate(*selected, group_cols, aggs, stop);
  }
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  for (int c : group_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
  for (const AggregateSpec& spec : aggs) CAPE_RETURN_IF_ERROR(ValidateAggSpec(table, spec));

  // Output schema: group columns then aggregates (same as GroupByAggregate).
  std::vector<Field> out_fields;
  out_fields.reserve(group_cols.size() + aggs.size());
  for (int c : group_cols) out_fields.push_back(table.schema()->field(c));
  for (const AggregateSpec& spec : aggs) {
    out_fields.push_back(
        Field{spec.output_name, relational_internal::AggOutputType(table, spec), true});
  }

  GroupTable groups;
  groups.num_aggs = aggs.size();
  const std::vector<AggPlan> plans = CompileAggPlans(table, aggs);
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    // The selection is provably empty without a scan.
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
  } else if (group_cols.empty()) {
    groups.AddGroup(-1);
    CAPE_RETURN_IF_ERROR(
        SingleGroupScan(table, pred, aggs, plans, &groups.states[0], stop));
  } else if (pred.always_matches()) {
    CAPE_RETURN_IF_ERROR(
        GroupScan(table, group_cols, aggs, plans, /*sel=*/nullptr, &groups, stop));
  } else {
    std::vector<int64_t> sel;
    CAPE_RETURN_IF_ERROR(FilterEqualsSel(table, conditions, stop, &sel));
    CAPE_RETURN_IF_ERROR(GroupScan(table, group_cols, aggs, plans, &sel, &groups, stop));
  }

  // Aggregation without grouping yields exactly one row even on empty input.
  if (group_cols.empty() && groups.states.empty()) groups.AddGroup(-1);

  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  out->Reserve(static_cast<int64_t>(groups.states.size()));
  Row out_row;
  for (size_t g = 0; g < groups.states.size(); ++g) {
    out_row.clear();
    for (int c : group_cols) out_row.push_back(table.GetValue(groups.representative[g], c));
    for (size_t a = 0; a < aggs.size(); ++a) {
      out_row.push_back(
          relational_internal::FinalizeAggState(table, aggs[a], groups.states[g][a]));
    }
    CAPE_RETURN_IF_ERROR(out->AppendRow(out_row));
  }
  return out;
}

namespace relational_internal {

Result<TablePtr> PagedFilterEquals(const Table& table,
                                   const std::vector<std::pair<int, Value>>& conditions,
                                   StopToken* stop) {
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  auto out = std::make_shared<Table>(table.schema());
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return out;
  }
  // Boxed AppendRow in ascending match order reproduces AppendRowsFrom
  // byte-for-byte: output dictionaries intern strings in first-appearance
  // order and null slots always store 0/0.0/kNullCode.
  const int num_cols = table.num_columns();
  Row row(static_cast<size_t>(num_cols));
  CAPE_RETURN_IF_ERROR(ScanPages(table, stop, [&](const PageView& view) -> Status {
    uint8_t mask[kKernelBlockSize];
    int64_t selbuf[kKernelBlockSize];
    const int n = view.row_count;
    for (int b = 0; b < n; b += static_cast<int>(kKernelBlockSize)) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = std::min<int>(static_cast<int>(kKernelBlockSize), n - b);
      pred.EvalChunk(view.cols, b, bn, mask);
      const int64_t k = CompactBlock(mask, bn, b, selbuf);
      for (int64_t j = 0; j < k; ++j) {
        const int i = static_cast<int>(selbuf[j]);  // page-local row
        for (int c = 0; c < num_cols; ++c) {
          row[static_cast<size_t>(c)] = ChunkGetValue(view.cols[c], table.column(c), i);
        }
        CAPE_RETURN_IF_ERROR(out->AppendRow(row));
      }
    }
    return Status::OK();
  }));
  return out;
}

}  // namespace relational_internal

// ---------------------------------------------------------------------------
// Sufficient statistics.

SufficientStats MomentsSel(const Column& col, const int64_t* sel, int64_t k) {
  CAPE_DCHECK(IsNumericType(col.type())) << "MomentsSel requires a numeric column";
  SufficientStats stats;
  if (col.type() == DataType::kInt64) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t row = sel[j];
      if (col.IsNull(row)) continue;
      const double v = static_cast<double>(col.GetInt64(row));
      ++stats.count;
      stats.sum += v;
      stats.sum_sq += v * v;
    }
  } else {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t row = sel[j];
      if (col.IsNull(row)) continue;
      const double v = col.GetDouble(row);
      ++stats.count;
      stats.sum += v;
      stats.sum_sq += v * v;
    }
  }
  return stats;
}

}  // namespace cape
