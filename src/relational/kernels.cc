// Block/morsel vectorized kernels (DESIGN.md §14). Scans run in
// kKernelBlockSize-row blocks: conjunctive equality predicates evaluate into
// 0/1 byte masks via tight branch-free loops the compiler auto-vectorizes,
// masks compact into selection vectors, dense group keys pack a block at a
// time, and the fused FilterGroupAggregate feeds aggregates straight from
// the base table — no materialized intermediate, no per-row std::function.
//
// Loops tagged `// vec-hot` are asserted auto-vectorized by
// tools/check_vectorization.sh (gcc -O3 -fopt-info-vec); keep the tag on the
// `for` line. Loops deliberately left scalar: mask→selection compaction
// (loop-carried index), floating-point accumulation (addition order is part
// of the byte-identity contract with the legacy path), and per-group scatter
// updates (data-dependent indices).

#include "relational/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"
#include "relational/operators_internal.h"

namespace cape {

namespace {

std::atomic<bool> g_vectorized_kernels{true};

using relational_internal::AggState;
using relational_internal::UpdateAggState;
using relational_internal::ValidateAggSpec;
using relational_internal::ValidateColumnIndex;

// ---------------------------------------------------------------------------
// Mask and selection primitives.

int64_t CountMask(const uint8_t* mask, int n) {
  int64_t c = 0;
  for (int i = 0; i < n; ++i) c += mask[i];  // vec-hot
  return c;
}

int64_t CountMaskAndValid(const uint8_t* mask, const uint8_t* valid, int n) {
  int64_t c = 0;
  for (int i = 0; i < n; ++i) c += mask[i] & valid[i];  // vec-hot
  return c;
}

// The 8-byte compares write a same-width temporary: gcc cannot mix
// int64/double loads with byte-mask stores in one vector loop ("no vectype"),
// and baseline SSE2 has no 64-bit integer compare at all (pcmpeqq is SSE4.1).
// Equality therefore runs as a vectorizable XOR — tmp[i] == 0 iff
// data[i] == want — and the zero test folds into the scalar narrowing pass
// back in EvalBlock. The helpers must stay noinline: inlined into the
// switch, gcc forward-propagates the temporary into the narrowing AND and
// recreates exactly the mixed-width loop the temporary exists to avoid.
[[gnu::noinline]] void MaskInt64Eq(const int64_t* data, int64_t want, int n,
                                   uint64_t* tmp) {
  const uint64_t w = static_cast<uint64_t>(want);
  for (int i = 0; i < n; ++i) tmp[i] = static_cast<uint64_t>(data[i]) ^ w;  // vec-hot
}

// Value::Compare's exact equality rule !(x<v) && !(x>v) treats NaN as equal
// to everything and -0.0 as equal to 0.0; a plain == would diverge. Both
// compares vectorize as SSE2 cmppd selects, leaving tmp[i] == 0.0 exactly
// when the row matches; the zero test runs in the scalar narrowing pass.
[[gnu::noinline]] void MaskDoubleEq(const double* data, double want, int n,
                                    double* tmp) {
  for (int i = 0; i < n; ++i) tmp[i] = ((data[i] < want) | (data[i] > want)) ? 1.0 : 0.0;  // vec-hot
}

/// Branch-free mask→selection compaction: every slot is written, the cursor
/// advances only on set mask bytes. Sequential by construction (loop-carried
/// k), so it stays scalar — the win is the absence of a mispredicted branch
/// per row, not SIMD.
int64_t CompactBlock(const uint8_t* mask, int n, int64_t begin, int64_t* out) {
  int64_t k = 0;
  for (int i = 0; i < n; ++i) {
    out[k] = begin + i;
    k += mask[i];
  }
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// Toggle.

void SetVectorizedKernelsEnabled(bool enabled) {
  g_vectorized_kernels.store(enabled, std::memory_order_relaxed);
}

bool VectorizedKernelsEnabled() {
  return g_vectorized_kernels.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// BlockPredicate.

BlockPredicate::BlockPredicate(const Table& table,
                               const std::vector<std::pair<int, Value>>& conditions) {
  // Compilation rules mirror RowEqualityMatcher's dictionary branch exactly;
  // the vectorized kernels always run on codes (codes are stored regardless
  // of the dictionary-kernel toggle), and never_matches() proofs are
  // toggle-independent facts about the data.
  conds_.reserve(conditions.size());
  for (const auto& [col_idx, value] : conditions) {
    Cond cond;
    cond.col = &table.column(col_idx);
    if (value.is_null()) {
      cond.kind = cond.col->type() == DataType::kString ? Kind::kNullCode
                                                        : Kind::kNullValidity;
    } else if (cond.col->type() == DataType::kString) {
      if (value.type() != DataType::kString) {
        never_matches_ = true;  // numerics order before strings, never equal
        return;
      }
      cond.code = cond.col->FindCode(value.string_value());
      if (cond.code == Column::kNullCode) {
        never_matches_ = true;  // value absent from dictionary: no row matches
        return;
      }
      cond.kind = Kind::kCode;
    } else if (value.type() == DataType::kString) {
      never_matches_ = true;  // string value vs numeric column: never equal
      return;
    } else if (cond.col->type() == DataType::kInt64 &&
               value.type() == DataType::kInt64) {
      cond.kind = Kind::kInt64;
      cond.i64 = value.int64_value();
    } else if (cond.col->type() == DataType::kDouble) {
      cond.kind = Kind::kDoubleEq;
      cond.f64 = value.AsDouble();
    } else {
      cond.kind = Kind::kInt64AsDouble;
      cond.f64 = value.AsDouble();
    }
    conds_.push_back(cond);
  }
}

void BlockPredicate::EvalBlock(int64_t begin, int n, uint8_t* mask) const {
  std::memset(mask, 1, static_cast<size_t>(n));
  // Scratch for the 8-byte compares; see MaskInt64Eq/MaskDoubleEq for why
  // they run through a same-width temporary in a noinline helper. Each case
  // uses exactly one member — never both — so no punning occurs.
  union {
    uint64_t u64[kKernelBlockSize];
    double f64[kKernelBlockSize];
  } tmp;
  for (const Cond& cond : conds_) {
    const Column& col = *cond.col;
    switch (cond.kind) {
      case Kind::kCode: {
        const int32_t* codes = col.codes_data() + begin;
        const int32_t want = cond.code;
        // kNullCode (-1) never equals a real code, so no separate null check.
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(codes[i] == want);  // vec-hot
        break;
      }
      case Kind::kNullCode: {
        const int32_t* codes = col.codes_data() + begin;
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(codes[i] < 0);  // vec-hot
        break;
      }
      case Kind::kNullValidity: {
        const uint8_t* valid = col.validity_data() + begin;
        for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(valid[i] ^ 1);  // vec-hot
        break;
      }
      case Kind::kInt64: {
        MaskInt64Eq(col.int64_data() + begin, cond.i64, n, tmp.u64);
        // NULL slots store 0, so a want==0 condition needs the validity AND;
        // the cached null count skips it for fully-valid columns.
        if (col.null_count() == 0) {
          for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.u64[i] == 0);
        } else {
          const uint8_t* valid = col.validity_data() + begin;
          for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.u64[i] == 0) & valid[i];
        }
        break;
      }
      case Kind::kDoubleEq: {
        MaskDoubleEq(col.double_data() + begin, cond.f64, n, tmp.f64);
        if (col.null_count() == 0) {
          for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.f64[i] == 0.0);
        } else {
          const uint8_t* valid = col.validity_data() + begin;
          for (int i = 0; i < n; ++i) mask[i] &= static_cast<uint8_t>(tmp.f64[i] == 0.0) & valid[i];
        }
        break;
      }
      case Kind::kInt64AsDouble: {
        // int64 column against a double condition value: the int64→double
        // conversion has no baseline-SSE2 vector form, so this rare shape
        // stays scalar.
        const int64_t* data = col.int64_data() + begin;
        const uint8_t* valid = col.validity_data() + begin;
        const double want = cond.f64;
        for (int i = 0; i < n; ++i) {
          const double x = static_cast<double>(data[i]);
          mask[i] &= static_cast<uint8_t>(valid[i] & !(x < want) & !(x > want));
        }
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Selection-vector filter and count.

Status FilterEqualsSel(const Table& table,
                       const std::vector<std::pair<int, Value>>& conditions,
                       StopToken* stop, std::vector<int64_t>* sel) {
  sel->clear();
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return Status::OK();
  }
  const int64_t n = table.num_rows();
  uint8_t mask[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    const size_t base = sel->size();
    sel->resize(base + static_cast<size_t>(bn));
    const int64_t k = CompactBlock(mask, bn, b, sel->data() + base);
    sel->resize(base + static_cast<size_t>(k));
  }
  return Status::OK();
}

Result<int64_t> CountFilterMatches(const Table& table,
                                   const std::vector<std::pair<int, Value>>& conditions,
                                   StopToken* stop) {
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  if (!VectorizedKernelsEnabled()) {
    const RowEqualityMatcher matcher(table, conditions);
    if (matcher.never_matches()) {
      if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
      return int64_t{0};
    }
    int64_t count = 0;
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      count += matcher.Matches(row) ? 1 : 0;
    }
    return count;
  }
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
    return int64_t{0};
  }
  const int64_t n = table.num_rows();
  int64_t count = 0;
  uint8_t mask[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    count += CountMask(mask, bn);
  }
  return count;
}

// ---------------------------------------------------------------------------
// Fused filter→group→aggregate.

namespace {

/// Pre-resolved update shape of one aggregate, so the per-row scatter loop
/// dispatches on a dense enum instead of re-deriving (func, column type)
/// per row. Update arithmetic replicates UpdateAggState exactly — in
/// particular the int64 sum's dual isum/dsum accumulation.
enum class AggKind : uint8_t {
  kCountStar,  // count(*): rows
  kCountCol,   // count(col): non-null rows
  kSumInt64,   // sum/avg over an int64 column
  kSumDouble,  // sum/avg over a double column
  kBoxed,      // min/max: boxed Value comparisons via UpdateAggState
};

struct AggPlan {
  AggKind kind = AggKind::kBoxed;
  const Column* col = nullptr;
};

std::vector<AggPlan> CompileAggPlans(const Table& table,
                                     const std::vector<AggregateSpec>& aggs) {
  std::vector<AggPlan> plans;
  plans.reserve(aggs.size());
  for (const AggregateSpec& spec : aggs) {
    AggPlan p;
    if (spec.input_col == AggregateSpec::kCountStar) {
      p.kind = AggKind::kCountStar;
    } else {
      p.col = &table.column(spec.input_col);
      switch (spec.func) {
        case AggFunc::kCount:
          p.kind = AggKind::kCountCol;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          p.kind = p.col->type() == DataType::kInt64 ? AggKind::kSumInt64
                                                     : AggKind::kSumDouble;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          p.kind = AggKind::kBoxed;
          break;
      }
    }
    plans.push_back(p);
  }
  return plans;
}

void UpdateRowWithPlans(const Table& table, const std::vector<AggregateSpec>& aggs,
                        const std::vector<AggPlan>& plans, int64_t row,
                        std::vector<AggState>* states) {
  for (size_t a = 0; a < plans.size(); ++a) {
    AggState& st = (*states)[a];
    const AggPlan& p = plans[a];
    switch (p.kind) {
      case AggKind::kCountStar:
        ++st.count;
        break;
      case AggKind::kCountCol:
        if (!p.col->IsNull(row)) ++st.count;
        break;
      case AggKind::kSumInt64:
        if (!p.col->IsNull(row)) {
          ++st.count;
          const int64_t v = p.col->GetInt64(row);
          st.isum += v;
          st.dsum += static_cast<double>(v);
        }
        break;
      case AggKind::kSumDouble:
        if (!p.col->IsNull(row)) {
          ++st.count;
          st.dsum += p.col->GetDouble(row);
        }
        break;
      case AggKind::kBoxed:
        UpdateAggState(table, aggs[a], row, &st);
        break;
    }
  }
}

/// Discovered groups in first-seen order — the numbering contract every
/// downstream consumer (and the byte-identity proof vs the legacy path)
/// depends on.
struct GroupTable {
  std::vector<int64_t> representative;        // first base-table row per group
  std::vector<std::vector<AggState>> states;  // [group][agg]
  size_t num_aggs = 0;

  size_t AddGroup(int64_t row) {
    representative.push_back(row);
    states.emplace_back(num_aggs);
    return states.size() - 1;
  }
};

/// Group lookup via a direct-address array — one vector access per row for
/// small mixed-radix key spaces.
struct DirectSink {
  DirectSink(uint64_t domain, GroupTable* groups)
      : slots(static_cast<size_t>(domain), -1), groups(groups) {}

  size_t GidFor(uint64_t key, int64_t row) {
    int32_t& slot = slots[static_cast<size_t>(key)];
    if (slot < 0) slot = static_cast<int32_t>(groups->AddGroup(row));
    return static_cast<size_t>(slot);
  }

  std::vector<int32_t> slots;
  GroupTable* groups;
};

/// Group lookup via an exact uint64-keyed hash map for larger key spaces.
struct MapSink {
  MapSink(size_t expected, GroupTable* groups) : groups(groups) {
    map.reserve(expected);
  }

  size_t GidFor(uint64_t key, int64_t row) {
    auto [it, fresh] = map.try_emplace(key, groups->states.size());
    if (fresh) groups->AddGroup(row);
    return it->second;
  }

  std::unordered_map<uint64_t, size_t> map;
  GroupTable* groups;
};

/// One column of the dense mixed-radix packed key (DESIGN.md §10): string
/// columns map onto dictionary codes, narrow int64 columns onto value - base;
/// NULL maps to digit 0.
struct DenseCol {
  const Column* col = nullptr;
  uint64_t stride = 1;
  int64_t base = 0;  // minimum value for int64 columns
  bool is_string = false;
};

/// Dense-key eligibility and layout, mirroring the legacy GroupByAggregate
/// rules: every group column must be a string or an int64 with a value range
/// narrower than 2^22, and the mixed-radix domain product must fit uint64.
/// `sel` (when non-null) restricts the int64 range scan to the selected rows
/// — exactly the rows the legacy composed path would have materialized.
bool PlanDenseKeys(const Table& table, const std::vector<int>& group_cols,
                   const std::vector<int64_t>* sel, std::vector<DenseCol>* dense,
                   uint64_t* domain_product) {
  if (table.num_rows() >= (int64_t{1} << 31)) return false;
  *domain_product = 1;
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  for (int c : group_cols) {
    const Column& col = table.column(c);
    DenseCol d{&col, *domain_product, 0, false};
    uint64_t domain;  // cardinality + 1 slot for NULL
    if (col.type() == DataType::kString) {
      d.is_string = true;
      domain = static_cast<uint64_t>(col.dict_size()) + 1;
    } else if (col.type() == DataType::kInt64) {
      int64_t lo = 0;
      int64_t hi = 0;
      bool any = false;
      for (int64_t j = 0; j < total; ++j) {
        const int64_t row = sel != nullptr ? (*sel)[static_cast<size_t>(j)] : j;
        if (col.IsNull(row)) continue;
        const int64_t v = col.GetInt64(row);
        lo = any ? std::min(lo, v) : v;
        hi = any ? std::max(hi, v) : v;
        any = true;
      }
      const uint64_t width = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      if (width >= (uint64_t{1} << 22)) return false;  // too sparse
      domain = width + 2;
      d.base = lo;
    } else {
      return false;  // double group keys keep the generic encoder
    }
    if (*domain_product > std::numeric_limits<uint64_t>::max() / domain) {
      return false;  // mixed-radix product overflows uint64
    }
    *domain_product *= domain;
    dense->push_back(d);
  }
  return true;
}

/// Packs the mixed-radix keys of rows [begin, begin + n) into keys[0..n).
void PackBlockKeys(const std::vector<DenseCol>& dense, int64_t begin, int n,
                   uint64_t* keys) {
  // gcc idiom-recognizes a zero-fill loop into memset anyway; be explicit.
  std::memset(keys, 0, static_cast<size_t>(n) * sizeof(uint64_t));
  for (const DenseCol& d : dense) {
    const uint64_t stride = d.stride;
    if (d.is_string) {
      const int32_t* codes = d.col->codes_data() + begin;
      for (int i = 0; i < n; ++i) keys[i] += static_cast<uint64_t>(codes[i] + 1) * stride;  // vec-hot
    } else if (d.col->null_count() == 0) {
      const int64_t* data = d.col->int64_data() + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) keys[i] += (static_cast<uint64_t>(data[i]) - base + 1) * stride;  // vec-hot
    } else {
      // Nullable int64: the select between digit 0 (NULL) and value - base
      // mixes byte and quadword lanes, so it stays scalar; the fully-valid
      // fast path above is the common shape.
      const int64_t* data = d.col->int64_data() + begin;
      const uint8_t* valid = d.col->validity_data() + begin;
      const uint64_t base = static_cast<uint64_t>(d.base);
      for (int i = 0; i < n; ++i) {
        keys[i] += (valid[i] != 0 ? static_cast<uint64_t>(data[i]) - base + 1 : 0) * stride;
      }
    }
  }
}

/// Scalar key pack for selection-vector scans (gathered rows defeat SIMD;
/// the filter already shrank the row set).
uint64_t PackKeyScalar(const std::vector<DenseCol>& dense, int64_t row) {
  uint64_t key = 0;
  for (const DenseCol& d : dense) {
    const uint64_t digit =
        d.is_string
            ? static_cast<uint64_t>(d.col->GetCode(row) + 1)  // NULL -> 0
            : (d.col->IsNull(row)
                   ? 0
                   : static_cast<uint64_t>(d.col->GetInt64(row) - d.base) + 1);
    key += digit * d.stride;
  }
  return key;
}

template <typename Sink>
Status DenseScanAllRows(const Table& table, const std::vector<AggregateSpec>& aggs,
                        const std::vector<AggPlan>& plans,
                        const std::vector<DenseCol>& dense, Sink& sink,
                        GroupTable* groups, StopToken* stop) {
  const int64_t n = table.num_rows();
  uint64_t keys[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    PackBlockKeys(dense, b, bn, keys);
    for (int i = 0; i < bn; ++i) {
      const int64_t row = b + i;
      const size_t g = sink.GidFor(keys[i], row);
      UpdateRowWithPlans(table, aggs, plans, row, &groups->states[g]);
    }
  }
  return Status::OK();
}

template <typename Sink>
Status DenseScanSel(const Table& table, const std::vector<AggregateSpec>& aggs,
                    const std::vector<AggPlan>& plans,
                    const std::vector<DenseCol>& dense,
                    const std::vector<int64_t>& sel, Sink& sink, GroupTable* groups,
                    StopToken* stop) {
  for (size_t j = 0; j < sel.size(); ++j) {
    if ((j & (static_cast<size_t>(kStopCheckStride) - 1)) == 0) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    }
    const int64_t row = sel[j];
    const size_t g = sink.GidFor(PackKeyScalar(dense, row), row);
    UpdateRowWithPlans(table, aggs, plans, row, &groups->states[g]);
  }
  return Status::OK();
}

/// Generic fallback (double group keys, wide int ranges, overflowing domain
/// products): byte-encoded keys hashed once per row, collisions resolved by
/// key bytes — the legacy generic path, restricted to `sel` when given and
/// with block-granularity stop checks.
Status EncoderScan(const Table& table, const std::vector<int>& group_cols,
                   const std::vector<AggregateSpec>& aggs,
                   const std::vector<AggPlan>& plans, const std::vector<int64_t>* sel,
                   GroupTable* groups, StopToken* stop) {
  GroupKeyEncoder encoder(table, group_cols);
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  const size_t expected = static_cast<size_t>(total / 4 + 1);
  std::unordered_map<uint64_t, std::vector<size_t>> group_buckets;
  std::vector<std::string> group_keys;
  group_buckets.reserve(expected);
  group_keys.reserve(expected);
  std::string key;
  for (int64_t j = 0; j < total; ++j) {
    if ((j & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int64_t row = sel != nullptr ? (*sel)[static_cast<size_t>(j)] : j;
    key.clear();
    encoder.EncodeRow(row, &key);
    const uint64_t hash = HashBytes(key.data(), key.size());
    std::vector<size_t>& bucket = group_buckets[hash];
    size_t group = groups->states.size();
    for (size_t candidate : bucket) {
      if (group_keys[candidate] == key) {
        group = candidate;
        break;
      }
    }
    if (group == groups->states.size()) {
      bucket.push_back(group);
      group_keys.push_back(key);
      groups->AddGroup(row);
    }
    UpdateRowWithPlans(table, aggs, plans, row, &groups->states[group]);
  }
  return Status::OK();
}

Status GroupScan(const Table& table, const std::vector<int>& group_cols,
                 const std::vector<AggregateSpec>& aggs,
                 const std::vector<AggPlan>& plans, const std::vector<int64_t>* sel,
                 GroupTable* groups, StopToken* stop) {
  std::vector<DenseCol> dense;
  uint64_t domain_product = 1;
  if (!PlanDenseKeys(table, group_cols, sel, &dense, &domain_product)) {
    return EncoderScan(table, group_cols, aggs, plans, sel, groups, stop);
  }
  const int64_t total = sel != nullptr ? static_cast<int64_t>(sel->size())
                                       : table.num_rows();
  // Small key spaces use a direct-address table; larger ones an exact
  // uint64-keyed hash map (same crossover heuristic as the legacy path).
  const uint64_t direct_cap = static_cast<uint64_t>(std::max<int64_t>(total, 1024)) * 4;
  if (domain_product <= direct_cap) {
    DirectSink sink(domain_product, groups);
    return sel != nullptr
               ? DenseScanSel(table, aggs, plans, dense, *sel, sink, groups, stop)
               : DenseScanAllRows(table, aggs, plans, dense, sink, groups, stop);
  }
  MapSink sink(static_cast<size_t>(total / 4 + 1), groups);
  return sel != nullptr
             ? DenseScanSel(table, aggs, plans, dense, *sel, sink, groups, stop)
             : DenseScanAllRows(table, aggs, plans, dense, sink, groups, stop);
}

/// Global aggregation (no group columns): one state vector, aggregates
/// consume the block mask / selection vector directly — count(*) is a mask
/// popcount, count(col) a mask∧validity popcount, sums walk the selection
/// sequentially (floating-point addition order is part of the identity
/// contract with the legacy path).
Status SingleGroupScan(const Table& table, const BlockPredicate& pred,
                       const std::vector<AggregateSpec>& aggs,
                       const std::vector<AggPlan>& plans,
                       std::vector<AggState>* states, StopToken* stop) {
  bool need_sel = false;
  for (const AggPlan& p : plans) {
    if (p.kind != AggKind::kCountStar && p.kind != AggKind::kCountCol) need_sel = true;
  }
  const int64_t n = table.num_rows();
  uint8_t mask[kKernelBlockSize];
  int64_t selbuf[kKernelBlockSize];
  for (int64_t b = 0; b < n; b += kKernelBlockSize) {
    CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
    pred.EvalBlock(b, bn, mask);
    int64_t k = 0;
    if (need_sel) k = CompactBlock(mask, bn, b, selbuf);
    for (size_t a = 0; a < plans.size(); ++a) {
      AggState& st = (*states)[a];
      const AggPlan& p = plans[a];
      switch (p.kind) {
        case AggKind::kCountStar:
          st.count += CountMask(mask, bn);
          break;
        case AggKind::kCountCol:
          st.count += p.col->null_count() == 0
                          ? CountMask(mask, bn)
                          : CountMaskAndValid(mask, p.col->validity_data() + b, bn);
          break;
        case AggKind::kSumInt64:
          for (int64_t j = 0; j < k; ++j) {
            const int64_t row = selbuf[j];
            if (p.col->IsNull(row)) continue;
            ++st.count;
            const int64_t v = p.col->GetInt64(row);
            st.isum += v;
            st.dsum += static_cast<double>(v);
          }
          break;
        case AggKind::kSumDouble:
          for (int64_t j = 0; j < k; ++j) {
            const int64_t row = selbuf[j];
            if (p.col->IsNull(row)) continue;
            ++st.count;
            st.dsum += p.col->GetDouble(row);
          }
          break;
        case AggKind::kBoxed:
          for (int64_t j = 0; j < k; ++j) {
            UpdateAggState(table, aggs[a], selbuf[j], &st);
          }
          break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<TablePtr> FilterGroupAggregate(const Table& table,
                                      const std::vector<std::pair<int, Value>>& conditions,
                                      const std::vector<int>& group_cols,
                                      const std::vector<AggregateSpec>& aggs,
                                      StopToken* stop) {
  if (!VectorizedKernelsEnabled()) {
    // Legacy two-operator composition: the A/B baseline the fused path is
    // proven byte-identical against.
    CAPE_ASSIGN_OR_RETURN(TablePtr selected, FilterEquals(table, conditions, stop));
    return GroupByAggregate(*selected, group_cols, aggs, stop);
  }
  for (const auto& [col, value] : conditions) {
    CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, col));
    (void)value;
  }
  for (int c : group_cols) CAPE_RETURN_IF_ERROR(ValidateColumnIndex(table, c));
  for (const AggregateSpec& spec : aggs) CAPE_RETURN_IF_ERROR(ValidateAggSpec(table, spec));

  // Output schema: group columns then aggregates (same as GroupByAggregate).
  std::vector<Field> out_fields;
  out_fields.reserve(group_cols.size() + aggs.size());
  for (int c : group_cols) out_fields.push_back(table.schema()->field(c));
  for (const AggregateSpec& spec : aggs) {
    out_fields.push_back(
        Field{spec.output_name, relational_internal::AggOutputType(table, spec), true});
  }

  GroupTable groups;
  groups.num_aggs = aggs.size();
  const std::vector<AggPlan> plans = CompileAggPlans(table, aggs);
  const BlockPredicate pred(table, conditions);
  if (pred.never_matches()) {
    // The selection is provably empty without a scan.
    if (stop != nullptr && stop->ShouldStopNow()) return stop->ToStatus();
  } else if (group_cols.empty()) {
    groups.AddGroup(-1);
    CAPE_RETURN_IF_ERROR(
        SingleGroupScan(table, pred, aggs, plans, &groups.states[0], stop));
  } else if (pred.always_matches()) {
    CAPE_RETURN_IF_ERROR(
        GroupScan(table, group_cols, aggs, plans, /*sel=*/nullptr, &groups, stop));
  } else {
    std::vector<int64_t> sel;
    CAPE_RETURN_IF_ERROR(FilterEqualsSel(table, conditions, stop, &sel));
    CAPE_RETURN_IF_ERROR(GroupScan(table, group_cols, aggs, plans, &sel, &groups, stop));
  }

  // Aggregation without grouping yields exactly one row even on empty input.
  if (group_cols.empty() && groups.states.empty()) groups.AddGroup(-1);

  auto out = std::make_shared<Table>(Schema::Make(std::move(out_fields)));
  out->Reserve(static_cast<int64_t>(groups.states.size()));
  Row out_row;
  for (size_t g = 0; g < groups.states.size(); ++g) {
    out_row.clear();
    for (int c : group_cols) out_row.push_back(table.GetValue(groups.representative[g], c));
    for (size_t a = 0; a < aggs.size(); ++a) {
      out_row.push_back(
          relational_internal::FinalizeAggState(table, aggs[a], groups.states[g][a]));
    }
    CAPE_RETURN_IF_ERROR(out->AppendRow(out_row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sufficient statistics.

SufficientStats MomentsSel(const Column& col, const int64_t* sel, int64_t k) {
  CAPE_DCHECK(IsNumericType(col.type())) << "MomentsSel requires a numeric column";
  SufficientStats stats;
  if (col.type() == DataType::kInt64) {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t row = sel[j];
      if (col.IsNull(row)) continue;
      const double v = static_cast<double>(col.GetInt64(row));
      ++stats.count;
      stats.sum += v;
      stats.sum_sq += v * v;
    }
  } else {
    for (int64_t j = 0; j < k; ++j) {
      const int64_t row = sel[j];
      if (col.IsNull(row)) continue;
      const double v = col.GetDouble(row);
      ++stats.count;
      stats.sum += v;
      stats.sum_sq += v * v;
    }
  }
  return stats;
}

}  // namespace cape
