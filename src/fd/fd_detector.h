#ifndef CAPE_FD_FD_DETECTOR_H_
#define CAPE_FD_FD_DETECTOR_H_

#include <unordered_map>

#include "common/cancellation.h"
#include "common/result.h"
#include "fd/attr_set.h"
#include "fd/fd_set.h"
#include "relational/table.h"

namespace cape {

/// Detects functional dependencies as a side effect of pattern mining
/// (Appendix D): an FD A -> B holds iff |pi_A(R)| == |pi_{A u B}(R)|.
///
/// The miner records the group count of every aggregation query it runs via
/// RecordGroupSize; DetectFdsFor(G) then derives FDs (G \ {A}) -> A whenever
/// both cardinalities are known. Because the miner enumerates attribute sets
/// in increasing size, the (G \ {A}) cardinality is always recorded before G
/// is processed (the property Algorithm 2 relies on).
class FdDetector {
 public:
  explicit FdDetector(FdSet* fd_set) : fd_set_(fd_set) {}

  /// Records |pi_G(R)| = `num_groups`.
  void RecordGroupSize(AttrSet g, int64_t num_groups);

  /// Whether |pi_G(R)| has been recorded.
  bool HasGroupSize(AttrSet g) const { return group_sizes_.count(g) > 0; }

  /// Recorded cardinality, or -1 when unknown.
  int64_t GetGroupSize(AttrSet g) const;

  /// Checks all FDs (G \ {A}) -> A for A in G against recorded
  /// cardinalities and adds the ones that hold to the bound FdSet.
  /// Returns the number of new FDs added.
  int DetectFdsFor(AttrSet g);

  /// Computes |pi_G(table)| directly (used for seeding and tests). Returns
  /// the stop Status when `stop` fires mid-scan.
  static Result<int64_t> CountGroups(const Table& table, AttrSet g,
                                     StopToken* stop = nullptr);

 private:
  FdSet* fd_set_;
  std::unordered_map<AttrSet, int64_t, AttrSetHasher> group_sizes_;
};

}  // namespace cape

#endif  // CAPE_FD_FD_DETECTOR_H_
