#ifndef CAPE_FD_ATTR_SET_H_
#define CAPE_FD_ATTR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cape {

/// A set of attribute (column) indices represented as a 64-bit mask.
/// Supports relations with up to 64 attributes — far above the paper's
/// widest dataset (22 attributes).
class AttrSet {
 public:
  constexpr AttrSet() = default;
  constexpr explicit AttrSet(uint64_t bits) : bits_(bits) {}

  static AttrSet FromIndices(const std::vector<int>& indices) {
    AttrSet s;
    for (int i : indices) s.Add(i);
    return s;
  }

  static constexpr AttrSet Single(int index) { return AttrSet(uint64_t{1} << index); }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }
  int size() const { return __builtin_popcountll(bits_); }

  bool Contains(int index) const { return (bits_ >> index) & 1; }
  bool ContainsAll(AttrSet other) const { return (bits_ & other.bits_) == other.bits_; }
  bool Intersects(AttrSet other) const { return (bits_ & other.bits_) != 0; }

  void Add(int index) { bits_ |= uint64_t{1} << index; }
  void Remove(int index) { bits_ &= ~(uint64_t{1} << index); }

  AttrSet Union(AttrSet other) const { return AttrSet(bits_ | other.bits_); }
  AttrSet Intersect(AttrSet other) const { return AttrSet(bits_ & other.bits_); }
  AttrSet Difference(AttrSet other) const { return AttrSet(bits_ & ~other.bits_); }
  AttrSet Without(int index) const { return AttrSet(bits_ & ~(uint64_t{1} << index)); }

  /// Ascending list of member indices.
  std::vector<int> ToIndices() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size()));
    uint64_t b = bits_;
    while (b != 0) {
      out.push_back(__builtin_ctzll(b));
      b &= b - 1;
    }
    return out;
  }

  /// "{0,2,5}" for debugging.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int i : ToIndices()) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    }
    return out + "}";
  }

  friend bool operator==(AttrSet a, AttrSet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.bits_ != b.bits_; }
  friend bool operator<(AttrSet a, AttrSet b) { return a.bits_ < b.bits_; }

 private:
  uint64_t bits_ = 0;
};

struct AttrSetHasher {
  size_t operator()(AttrSet s) const { return std::hash<uint64_t>{}(s.bits()); }
};

}  // namespace cape

#endif  // CAPE_FD_ATTR_SET_H_
