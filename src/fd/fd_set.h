#ifndef CAPE_FD_FD_SET_H_
#define CAPE_FD_FD_SET_H_

#include <string>
#include <vector>

#include "fd/attr_set.h"

namespace cape {

/// A functional dependency lhs -> rhs over column indices of one relation.
/// Single-attribute right-hand sides suffice (Armstrong decomposition,
/// Appendix D).
struct FunctionalDependency {
  AttrSet lhs;
  int rhs = 0;

  friend bool operator==(const FunctionalDependency& a, const FunctionalDependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// A mutable collection of FDs supporting the inference queries the miner
/// needs (Appendix D): attribute closure, F-minimality, and F -> V tests.
class FdSet {
 public:
  FdSet() = default;

  /// Adds lhs -> rhs; duplicates are ignored. Trivial FDs (rhs in lhs) are
  /// dropped.
  void Add(AttrSet lhs, int rhs);
  void Add(const FunctionalDependency& fd) { Add(fd.lhs, fd.rhs); }

  size_t size() const { return fds_.size(); }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// Attribute closure attrs+ under the stored FDs (fixpoint iteration;
  /// the FD count is small so the quadratic loop is fine).
  AttrSet Closure(AttrSet attrs) const;

  /// Whether `attrs` functionally determines attribute `target`.
  bool Implies(AttrSet attrs, int target) const {
    return Closure(attrs).Contains(target);
  }

  /// Whether `attrs` determines every attribute in `targets`.
  bool ImpliesAll(AttrSet attrs, AttrSet targets) const {
    return Closure(attrs).ContainsAll(targets);
  }

  /// F is minimal iff no A in F is implied by F \ {A} (Appendix D: patterns
  /// with non-minimal F are redundant and skipped).
  bool IsMinimal(AttrSet f) const;

  /// "{0,1}->2; {3}->4"
  std::string ToString() const;

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace cape

#endif  // CAPE_FD_FD_SET_H_
