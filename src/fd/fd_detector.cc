#include "fd/fd_detector.h"

#include <unordered_set>

#include "common/failpoint.h"
#include "common/macros.h"
#include "relational/operators.h"

namespace cape {

void FdDetector::RecordGroupSize(AttrSet g, int64_t num_groups) {
  group_sizes_[g] = num_groups;
}

int64_t FdDetector::GetGroupSize(AttrSet g) const {
  auto it = group_sizes_.find(g);
  return it == group_sizes_.end() ? -1 : it->second;
}

int FdDetector::DetectFdsFor(AttrSet g) {
  const int64_t g_size = GetGroupSize(g);
  if (g_size < 0) return 0;
  int added = 0;
  for (int a : g.ToIndices()) {
    AttrSet lhs = g.Without(a);
    if (lhs.empty()) continue;
    const int64_t lhs_size = GetGroupSize(lhs);
    if (lhs_size < 0) continue;
    if (lhs_size == g_size) {
      size_t before = fd_set_->size();
      fd_set_->Add(lhs, a);
      if (fd_set_->size() > before) ++added;
    }
  }
  return added;
}

Result<int64_t> FdDetector::CountGroups(const Table& table, AttrSet g, StopToken* stop) {
  CAPE_FAILPOINT("fd.count_groups");
  GroupKeyEncoder encoder(table, g.ToIndices());
  std::unordered_set<std::string> keys;
  std::string key;
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    CAPE_RETURN_IF_STOPPED(stop);
    key.clear();
    encoder.EncodeRow(row, &key);
    keys.insert(key);
  }
  return static_cast<int64_t>(keys.size());
}

}  // namespace cape
