#include "fd/fd_detector.h"

#include <unordered_set>

#include "common/failpoint.h"
#include "common/macros.h"
#include "relational/operators.h"

namespace cape {

void FdDetector::RecordGroupSize(AttrSet g, int64_t num_groups) {
  group_sizes_[g] = num_groups;
}

int64_t FdDetector::GetGroupSize(AttrSet g) const {
  auto it = group_sizes_.find(g);
  return it == group_sizes_.end() ? -1 : it->second;
}

int FdDetector::DetectFdsFor(AttrSet g) {
  const int64_t g_size = GetGroupSize(g);
  if (g_size < 0) return 0;
  int added = 0;
  for (int a : g.ToIndices()) {
    AttrSet lhs = g.Without(a);
    if (lhs.empty()) continue;
    const int64_t lhs_size = GetGroupSize(lhs);
    if (lhs_size < 0) continue;
    if (lhs_size == g_size) {
      size_t before = fd_set_->size();
      fd_set_->Add(lhs, a);
      if (fd_set_->size() > before) ++added;
    }
  }
  return added;
}

Result<int64_t> FdDetector::CountGroups(const Table& table, AttrSet g, StopToken* stop) {
  CAPE_FAILPOINT("fd.count_groups");
  const std::vector<int> cols = g.ToIndices();
  // Single string attribute: the distinct count is a bitmap over dictionary
  // codes — no key encoding or hashing at all. This is the dominant shape
  // (level-1 FD probes run once per attribute).
  if (DictionaryKernelsEnabled() && cols.size() == 1 &&
      table.column(cols[0]).type() == DataType::kString) {
    const Column& col = table.column(cols[0]);
    std::vector<uint8_t> seen(static_cast<size_t>(col.dict_size()), 0);
    bool seen_null = false;
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int32_t code = col.GetCode(row);
      if (code < 0) {
        seen_null = true;
      } else {
        seen[static_cast<size_t>(code)] = 1;
      }
    }
    int64_t distinct = seen_null ? 1 : 0;
    for (uint8_t s : seen) distinct += s;
    return distinct;
  }
  GroupKeyEncoder encoder(table, cols);
  std::unordered_set<std::string> keys;
  keys.reserve(static_cast<size_t>(table.num_rows() / 4 + 1));
  std::string key;
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    key.clear();
    encoder.EncodeRow(row, &key);
    keys.insert(key);
  }
  return static_cast<int64_t>(keys.size());
}

}  // namespace cape
