#include "fd/fd_set.h"

#include <algorithm>

namespace cape {

void FdSet::Add(AttrSet lhs, int rhs) {
  if (lhs.Contains(rhs)) return;  // trivial
  FunctionalDependency fd{lhs, rhs};
  if (std::find(fds_.begin(), fds_.end(), fd) != fds_.end()) return;
  fds_.push_back(fd);
}

AttrSet FdSet::Closure(AttrSet attrs) const {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      if (!closure.Contains(fd.rhs) && closure.ContainsAll(fd.lhs)) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::IsMinimal(AttrSet f) const {
  for (int a : f.ToIndices()) {
    if (Implies(f.Without(a), a)) return false;
  }
  return true;
}

std::string FdSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) out += "; ";
    out += fds_[i].lhs.ToString() + "->" + std::to_string(fds_[i].rhs);
  }
  return out;
}

}  // namespace cape
