#include "storage/buffer_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace cape {

BufferManager::BufferManager(std::shared_ptr<HeapFile> file, int64_t budget_bytes)
    : file_(std::move(file)),
      budget_bytes_(budget_bytes),
      max_frames_(std::max<int64_t>(1, budget_bytes / std::max<int64_t>(1, file_->page_bytes()))) {}

Result<uint64_t> BufferManager::Pin(int64_t page, PageView* view) {
  MutexLock lock(mu_);
  size_t idx;
  auto it = page_map_.find(page);
  if (it != page_map_.end()) {
    idx = it->second;
    ++stats_.hits;
  } else {
    ++stats_.misses;
    CAPE_ASSIGN_OR_RETURN(idx, AcquireFrameLocked(/*allow_growth=*/true));
    // analyzer:allow-next-line(lock-order) single-threaded pager by design:
    CAPE_RETURN_IF_ERROR(LoadFrameLocked(idx, page));  // DESIGN.md §15 serializes faults
  }
  Frame& f = *frames_[idx];
  f.ref = true;
  if (f.pins++ == 0) {
    stats_.bytes_pinned += file_->page_bytes();
    stats_.peak_bytes_pinned = std::max(stats_.peak_bytes_pinned, stats_.bytes_pinned);
  }
  view->row_begin = f.row_begin;
  view->row_count = f.row_count;
  view->cols = f.chunks.data();
  return static_cast<uint64_t>(idx);
}

void BufferManager::Unpin(uint64_t cookie) {
  MutexLock lock(mu_);
  const size_t idx = static_cast<size_t>(cookie);
  CAPE_DCHECK(idx < frames_.size() && frames_[idx]->pins > 0)
      << "Unpin of a frame that is not pinned";
  Frame& f = *frames_[idx];
  if (--f.pins == 0) {
    stats_.bytes_pinned -= file_->page_bytes();
    // A frame acquired past the budget (every in-budget frame was pinned)
    // is released the moment its last pin drops, so the cache's unpinned
    // footprint never exceeds the budget.
    if (live_frames_ > max_frames_) ReleaseFrameLocked(idx);
  }
}

void BufferManager::Prefetch(int64_t page) {
  MutexLock lock(mu_);
  if (page < 0 || page >= file_->num_pages()) return;
  if (page_map_.count(page) != 0) return;
  auto idx = AcquireFrameLocked(/*allow_growth=*/false);
  if (!idx.ok()) return;  // no frame without pressure: skip the hint
  // analyzer:allow-next-line(lock-order) single-threaded pager (DESIGN.md §15)
  Status st = LoadFrameLocked(idx.ValueOrDie(), page);
  if (!st.ok()) {
    // Best-effort: a failed prefetch read surfaces (with a real Status) on
    // the Pin that follows.
    CAPE_LOG(Warning) << "prefetch of page " << page << " failed: " << st.ToString();
  }
}

PageSourceStats BufferManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Result<size_t> BufferManager::AcquireFrameLocked(bool allow_growth) {
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i]->page < 0 && frames_[i]->pins == 0) return i;
  }
  if (static_cast<int64_t>(frames_.size()) < max_frames_) {
    frames_.push_back(std::make_unique<Frame>());
    return frames_.size() - 1;
  }
  // CLOCK sweep: first pass may clear reference bits, so two revolutions
  // guarantee we see every unpinned frame with its bit down.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& f = *frames_[clock_hand_];
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.pins > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    if (f.page >= 0) {
      page_map_.erase(f.page);
      f.page = -1;
      ++stats_.evictions;
    }
    return idx;
  }
  if (!allow_growth) {
    return Status::OutOfRange("all frames pinned");  // Prefetch drops the hint
  }
  // Every frame is pinned: a Pin must still succeed, so grow past the
  // budget; Unpin releases the overflow frame as soon as it drops to zero.
  frames_.push_back(std::make_unique<Frame>());
  return frames_.size() - 1;
}

Status BufferManager::LoadFrameLocked(size_t idx, int64_t page) {
  Frame& f = *frames_[idx];
  if (f.buf.empty()) ++live_frames_;
  f.buf.resize(static_cast<size_t>(file_->page_bytes()));
  Status st = file_->ReadPage(page, f.buf.data());
  if (!st.ok()) {
    ReleaseFrameLocked(idx);
    return st;
  }
  CAPE_RETURN_IF_ERROR(file_->ParsePage(f.buf.data(), &f.row_begin, &f.row_count, &f.chunks));
  f.page = page;
  f.ref = false;
  page_map_[page] = idx;
  stats_.bytes_read += file_->page_bytes();
  return Status::OK();
}

void BufferManager::ReleaseFrameLocked(size_t idx) {
  Frame& f = *frames_[idx];
  if (f.page >= 0) page_map_.erase(f.page);
  if (!f.buf.empty()) --live_frames_;
  f.page = -1;
  f.ref = false;
  f.buf.clear();
  f.buf.shrink_to_fit();
  f.chunks.clear();
}

}  // namespace cape
