#ifndef CAPE_STORAGE_BUFFER_MANAGER_H_
#define CAPE_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "relational/page_source.h"
#include "storage/heap_file.h"

namespace cape {

/// Byte-budgeted page cache over one HeapFile (DESIGN.md §15).
///
/// Frames hold whole pages; Pin returns a frame whose buffer (and parsed
/// ColumnChunks) stay put until every pin drops. Replacement is CLOCK over
/// unpinned frames: each frame carries a reference bit set on pin, the hand
/// sweeps clearing bits and evicts the first unpinned frame whose bit is
/// already clear — sequential scans under a tight budget degrade to plain
/// FIFO recycling, which is exactly right for them.
///
/// The byte budget caps the steady-state frame count at
/// max(1, budget / page_bytes): at least one frame must exist for any scan
/// to make progress, so a budget smaller than one page degrades to a
/// single-frame cache rather than failing. Pins can temporarily exceed the
/// budget (a pin must never fail for capacity; overflow frames are freed as
/// soon as they unpin), making the budget a bound on *cached* (unpinned)
/// bytes rather than on instantaneous pinned working set.
///
/// Thread safety: every operation takes `mu_`, including page IO. Serial
/// IO under the lock is deliberate — concurrent miner threads share one
/// spindle/fd anyway, and it keeps eviction, map updates and reads
/// trivially atomic. Counters are plain ints under the same lock.
class BufferManager {
 public:
  BufferManager(std::shared_ptr<HeapFile> file, int64_t budget_bytes);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins `page`, reading it on a miss. The returned cookie identifies the
  /// pin for Unpin; `view` points at frame-owned storage valid until then.
  Result<uint64_t> Pin(int64_t page, PageView* view) CAPE_EXCLUDES(mu_);

  /// Drops one pin on the frame behind `cookie`.
  void Unpin(uint64_t cookie) CAPE_EXCLUDES(mu_);

  /// Loads `page` into a frame (recycling an unpinned one if needed) unless
  /// doing so would grow past the budget; then it does nothing. Never fails.
  void Prefetch(int64_t page) CAPE_EXCLUDES(mu_);

  PageSourceStats stats() const CAPE_EXCLUDES(mu_);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t max_frames() const { return max_frames_; }

 private:
  struct Frame {
    int64_t page = -1;  ///< -1 = empty frame (buffer released).
    int pins = 0;
    bool ref = false;  ///< CLOCK reference bit.
    std::vector<uint8_t> buf;
    std::vector<ColumnChunk> chunks;
    int64_t row_begin = 0;
    int row_count = 0;
  };

  /// Returns an empty frame index: reuses a free frame, grows up to
  /// max_frames_, then CLOCK-evicts; grows past the budget only if
  /// `allow_growth` and every frame is pinned.
  Result<size_t> AcquireFrameLocked(bool allow_growth) CAPE_REQUIRES(mu_);

  /// Reads `page` into frame `idx` and indexes it. On failure the frame is
  /// left empty and reusable.
  Status LoadFrameLocked(size_t idx, int64_t page) CAPE_REQUIRES(mu_);

  /// Releases an unpinned frame's buffer (over-budget shrink).
  void ReleaseFrameLocked(size_t idx) CAPE_REQUIRES(mu_);

  const std::shared_ptr<HeapFile> file_;
  const int64_t budget_bytes_;
  const int64_t max_frames_;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Frame>> frames_ CAPE_GUARDED_BY(mu_);
  std::unordered_map<int64_t, size_t> page_map_ CAPE_GUARDED_BY(mu_);
  size_t clock_hand_ CAPE_GUARDED_BY(mu_) = 0;
  int64_t live_frames_ CAPE_GUARDED_BY(mu_) = 0;  ///< Frames holding a buffer.
  PageSourceStats stats_ CAPE_GUARDED_BY(mu_);
};

}  // namespace cape

#endif  // CAPE_STORAGE_BUFFER_MANAGER_H_
