#ifndef CAPE_STORAGE_HEAP_FILE_H_
#define CAPE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column.h"
#include "relational/page_source.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace cape {

/// On-disk columnar heap file (DESIGN.md §15).
///
/// Layout:
///   [preamble: 4096 bytes]  magic, version, geometry, digest, checksum
///   [page 0] [page 1] ... [page N-1]   each exactly page_bytes long
///   [trailer]               schema, per-column stats, string dictionaries
///
/// Every page holds `rows_per_page` rows (the last may be short) in the
/// exact per-column layout the block kernels consume: a 64-byte header,
/// then per column an 8-byte null count, a validity byte per row slot, and
/// the 8-aligned typed data array (int64/double payloads or int32
/// dictionary codes). A page read is therefore handed to the kernels
/// zero-copy as ColumnChunks. Dictionary codes are file-global: the writer
/// interns strings across the whole file in first-appearance order —
/// the same order an in-memory Table's AppendRow produces — so codes in
/// pages agree with the dictionary stored in the trailer (and with the
/// source table's own codes, which is what makes resident A/B scans and
/// the byte-identity fixtures possible).
///
/// All checksums and the content digest are FNV-1a (common/hash.h). Page
/// checksums cover the page payload; the digest folds the schema digest,
/// row count, every page checksum, and the trailer bytes, and is the
/// content identity Table::Fingerprint uses for non-resident tables.

/// Default page geometry: 8192 rows = 4 kernel blocks per page. At the
/// crime-table shape (~4 string + 2 numeric columns) this is ~350 KB per
/// page — large enough that sequential read dominates seek, small enough
/// that a 10%-of-table budget still holds dozens of pages.
inline constexpr int64_t kDefaultRowsPerPage = 8192;

/// Aggregate stats for one column across the whole file, stored in the
/// trailer so a non-resident Table can answer null_count/Min/Max without
/// touching a single page (Column::SetPagedStats).
struct HeapFileColumnStats {
  int64_t null_total = 0;
  Value min = Value::Null();  ///< Null iff every row is NULL.
  Value max = Value::Null();
};

/// Streaming writer: rows in, pages out, constant memory. Buffers at most
/// one page of rows in staging Columns, flushing each time `rows_per_page`
/// accumulate; string columns keep their dictionaries across flushes
/// (Column::ClearRowsKeepDict) so codes stay file-global.
class HeapFileWriter {
 public:
  /// Creates/truncates `path`. rows_per_page must be a positive multiple of
  /// 2048 (the kernel block size) so block loops never straddle pages.
  static Result<std::unique_ptr<HeapFileWriter>> Create(
      const std::string& path, std::shared_ptr<Schema> schema,
      int64_t rows_per_page = kDefaultRowsPerPage);

  ~HeapFileWriter();
  HeapFileWriter(const HeapFileWriter&) = delete;
  HeapFileWriter& operator=(const HeapFileWriter&) = delete;

  /// Appends one row (same validation semantics as Table::AppendRow).
  Status Append(const Row& row);

  /// Flushes the final partial page, writes the trailer and preamble, and
  /// closes the file. Must be called exactly once; Append is invalid after.
  Status Finish();

  int64_t rows_written() const { return rows_written_; }

 private:
  HeapFileWriter(std::string path, std::shared_ptr<Schema> schema,
                 int64_t rows_per_page);

  Status FlushPage();

  std::string path_;
  std::shared_ptr<Schema> schema_;
  int64_t rows_per_page_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;

  std::vector<Column> staging_;  ///< One page of rows; dicts persist across pages.
  int64_t rows_written_ = 0;
  int64_t pages_written_ = 0;
  std::vector<HeapFileColumnStats> stats_;
  std::vector<uint64_t> page_checksums_;
  std::vector<uint8_t> page_buf_;
};

/// Read-side handle: validates the preamble and trailer at Open, then
/// serves whole-page reads with checksum verification. Thread-safe after
/// Open (pread on an immutable fd; no shared mutable state).
class HeapFile {
 public:
  static Result<std::shared_ptr<HeapFile>> Open(const std::string& path);

  ~HeapFile();
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t rows_per_page() const { return rows_per_page_; }
  int64_t num_pages() const { return num_pages_; }
  int64_t page_bytes() const { return page_bytes_; }
  uint64_t content_digest() const { return content_digest_; }

  /// File-global dictionary for column `c` (empty for numeric columns),
  /// in code order.
  const std::vector<std::string>& dictionary(int c) const {
    return dicts_[static_cast<size_t>(c)];
  }
  const HeapFileColumnStats& column_stats(int c) const {
    return stats_[static_cast<size_t>(c)];
  }

  /// Reads page `page` into `buf` (page_bytes() long), verifying the page
  /// checksum and header. IOError on short reads or corruption; failpoint
  /// site "storage.page_read" injects errors here for the degradation
  /// tests.
  Status ReadPage(int64_t page, uint8_t* buf) const;

  /// Interprets a page buffer previously filled by ReadPage: row range out,
  /// and one ColumnChunk per column pointing into `buf`.
  Status ParsePage(const uint8_t* buf, int64_t* row_begin, int* row_count,
                   std::vector<ColumnChunk>* chunks) const;

 private:
  HeapFile() = default;

  std::string path_;
  int fd_ = -1;
  std::shared_ptr<Schema> schema_;
  int64_t num_rows_ = 0;
  int64_t rows_per_page_ = 0;
  int64_t num_pages_ = 0;
  int64_t page_bytes_ = 0;
  uint64_t content_digest_ = 0;
  std::vector<std::vector<std::string>> dicts_;
  std::vector<HeapFileColumnStats> stats_;
  std::vector<int64_t> col_offsets_;   ///< Payload offset of each column's slice.
  std::vector<int64_t> data_offsets_;  ///< Offset of each column's typed data.
};

/// Convenience: streams every row of an in-memory table into a heap file.
/// The file's dictionaries come out identical to the table's (same
/// first-appearance interning order), which AttachHeapFile relies on.
Status WriteTableToHeapFile(const Table& table, const std::string& path,
                            int64_t rows_per_page = kDefaultRowsPerPage);

}  // namespace cape

#endif  // CAPE_STORAGE_HEAP_FILE_H_
