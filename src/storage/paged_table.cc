#include "storage/paged_table.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace cape {

Result<TablePtr> OpenPagedTable(const std::string& path, int64_t budget_bytes) {
  CAPE_ASSIGN_OR_RETURN(std::shared_ptr<HeapFile> file, HeapFile::Open(path));
  auto table = std::make_shared<Table>(file->schema());
  for (int c = 0; c < table->num_columns(); ++c) {
    Column& col = table->mutable_column(c);
    if (col.type() == DataType::kString) {
      CAPE_RETURN_IF_ERROR(col.LoadDictionary(file->dictionary(c)));
    }
    const HeapFileColumnStats& cs = file->column_stats(c);
    col.SetPagedStats(cs.null_total, cs.min, cs.max);
  }
  auto source = std::make_shared<PagedTable>(std::move(file), budget_bytes);
  CAPE_RETURN_IF_ERROR(table->AttachPageSource(std::move(source), /*rows_resident=*/false));
  return table;
}

Status AttachHeapFile(Table& table, const std::string& path, int64_t budget_bytes) {
  if (!table.rows_resident()) {
    return Status::InvalidArgument("AttachHeapFile requires a resident table");
  }
  CAPE_ASSIGN_OR_RETURN(std::shared_ptr<HeapFile> file, HeapFile::Open(path));
  if (!(*file->schema() == *table.schema())) {
    return Status::InvalidArgument("heap file schema " + file->schema()->ToString() +
                                   " does not match table schema " +
                                   table.schema()->ToString());
  }
  if (file->num_rows() != table.num_rows()) {
    return Status::InvalidArgument(
        "heap file holds " + std::to_string(file->num_rows()) + " rows, table has " +
        std::to_string(table.num_rows()));
  }
  // Codes stored in pages are interpreted against the table's in-memory
  // dictionaries on the resident A/B path, so they must agree exactly.
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() != DataType::kString) continue;
    const std::vector<std::string>& dict = file->dictionary(c);
    bool same = col.dict_size() == static_cast<int64_t>(dict.size());
    for (int32_t code = 0; same && code < col.dict_size(); ++code) {
      same = col.DictString(code) == dict[static_cast<size_t>(code)];
    }
    if (!same) {
      return Status::InvalidArgument("heap file dictionary for column " +
                                     std::to_string(c) +
                                     " does not match the table's");
    }
  }
  auto source = std::make_shared<PagedTable>(std::move(file), budget_bytes);
  return table.AttachPageSource(std::move(source), /*rows_resident=*/true);
}

}  // namespace cape
