#ifndef CAPE_STORAGE_PAGED_TABLE_H_
#define CAPE_STORAGE_PAGED_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "relational/page_source.h"
#include "relational/table.h"
#include "storage/buffer_manager.h"
#include "storage/heap_file.h"

namespace cape {

/// PageSource over a heap file + buffer manager: the storage half of an
/// out-of-core Table. Pin/Unpin delegate to the buffer manager; cookies are
/// frame indices.
class PagedTable : public PageSource {
 public:
  PagedTable(std::shared_ptr<HeapFile> file, int64_t budget_bytes)
      : file_(std::move(file)), buffers_(file_, budget_bytes) {}

  int64_t num_rows() const override { return file_->num_rows(); }
  int rows_per_page() const override { return static_cast<int>(file_->rows_per_page()); }
  int64_t num_pages() const override { return file_->num_pages(); }
  uint64_t content_digest() const override { return file_->content_digest(); }

  Result<PageRef> Pin(int64_t page) override {
    PageView view;
    CAPE_ASSIGN_OR_RETURN(uint64_t cookie, buffers_.Pin(page, &view));
    return PageRef(this, cookie, view);
  }

  void Prefetch(int64_t page) override { buffers_.Prefetch(page); }

  PageSourceStats stats() const override { return buffers_.stats(); }

  const std::shared_ptr<HeapFile>& heap_file() const { return file_; }
  BufferManager& buffer_manager() { return buffers_; }

 protected:
  void Unpin(uint64_t cookie) override { buffers_.Unpin(cookie); }

 private:
  std::shared_ptr<HeapFile> file_;
  BufferManager buffers_;
};

/// Opens a heap file as a *non-resident* table: rows stay on disk, the
/// table's columns carry only the file dictionaries (so predicate codes and
/// kernel key plans resolve) and the file-global stats (so
/// null_count/Min/Max answer in O(1)). `budget_bytes` caps the page cache —
/// an out-of-core scan works with any budget, down to a single page.
Result<TablePtr> OpenPagedTable(const std::string& path, int64_t budget_bytes);

/// Attaches a heap file to a fully in-memory table as its *resident* page
/// source — the A/B shape: the file must hold exactly the table's rows (use
/// WriteTableToHeapFile on the same table) so SetPagedStorageEnabled
/// switches scans between the in-memory arrays and the paged path over
/// identical data. Schema, row count, and per-column dictionaries must
/// match (codes in pages are interpreted against the table's dictionary).
Status AttachHeapFile(Table& table, const std::string& path, int64_t budget_bytes);

}  // namespace cape

#endif  // CAPE_STORAGE_PAGED_TABLE_H_
