#include "storage/heap_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"

namespace cape {
namespace {

constexpr int64_t kPreambleBytes = 4096;
constexpr int64_t kPageHeaderBytes = 64;
constexpr uint32_t kVersion = 1;
constexpr char kMagic[8] = {'C', 'A', 'P', 'E', 'H', 'F', '0', '1'};
constexpr uint64_t kPageMagic = 0x3130474150455043ULL;  // "CPEPAG01" LE-ish

int64_t Align8(int64_t n) { return (n + 7) & ~int64_t{7}; }

int64_t ElemBytes(DataType type) {
  return type == DataType::kString ? 4 : 8;  // int32 codes vs int64/double
}

/// Per-column slice offsets within a page, shared by writer and reader so
/// the layout is defined in exactly one place. Each slice is
///   [null_count: i64][validity: rows_per_page bytes][pad][data: 8-aligned]
/// and page_bytes comes out as the aligned end of the last slice.
struct PageLayout {
  std::vector<int64_t> slice_off;  ///< Start of each column's slice.
  std::vector<int64_t> data_off;   ///< Start of each column's typed data.
  int64_t page_bytes = 0;
};

PageLayout ComputeLayout(const Schema& schema, int64_t rows_per_page) {
  PageLayout layout;
  int64_t off = kPageHeaderBytes;
  for (int c = 0; c < schema.num_fields(); ++c) {
    layout.slice_off.push_back(off);
    const int64_t data = Align8(off + 8 + rows_per_page);
    layout.data_off.push_back(data);
    off = Align8(data + rows_per_page * ElemBytes(schema.field(c).type));
  }
  layout.page_bytes = off;
  return layout;
}

// Little serialization helpers: native-endian memcpy (heap files are
// machine-local scratch/cache artifacts, not an interchange format).
void PutBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }
void PutU32(std::vector<uint8_t>* out, uint32_t v) { PutBytes(out, &v, sizeof(v)); }
void PutU64(std::vector<uint8_t>* out, uint64_t v) { PutBytes(out, &v, sizeof(v)); }
void PutI64(std::vector<uint8_t>* out, int64_t v) { PutBytes(out, &v, sizeof(v)); }
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}
void PutValue(std::vector<uint8_t>* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.type() == DataType::kInt64) {
    PutU8(out, 1);
    PutI64(out, v.int64_value());
  } else if (v.type() == DataType::kDouble) {
    PutU8(out, 2);
    const double d = v.double_value();
    PutBytes(out, &d, sizeof(d));
  } else {
    PutU8(out, 3);
    PutString(out, v.string_value());
  }
}

/// Bounds-checked reader over a byte span (trailer parsing).
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status Take(void* out, size_t n) {
    if (pos_ + n > size_) return Status::IOError("heap file trailer truncated");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Result<uint8_t> U8() {
    uint8_t v = 0;
    CAPE_RETURN_IF_ERROR(Take(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v = 0;
    CAPE_RETURN_IF_ERROR(Take(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> I64() {
    int64_t v = 0;
    CAPE_RETURN_IF_ERROR(Take(&v, sizeof(v)));
    return v;
  }
  Result<std::string> String() {
    CAPE_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos_ + len > size_) return Status::IOError("heap file trailer truncated");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  Result<Value> TakeValue() {
    CAPE_ASSIGN_OR_RETURN(uint8_t tag, U8());
    switch (tag) {
      case 0:
        return Value::Null();
      case 1: {
        CAPE_ASSIGN_OR_RETURN(int64_t v, I64());
        return Value::Int64(v);
      }
      case 2: {
        double v;
        CAPE_RETURN_IF_ERROR(Take(&v, sizeof(v)));
        return Value::Double(v);
      }
      case 3: {
        CAPE_ASSIGN_OR_RETURN(std::string s, String());
        return Value::String(std::move(s));
      }
      default:
        return Status::IOError("heap file trailer: bad value tag");
    }
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

uint64_t ChecksumPayload(const uint8_t* page, int64_t page_bytes) {
  Fnv64 h;
  h.Update(page + kPageHeaderBytes, static_cast<size_t>(page_bytes - kPageHeaderBytes));
  return h.digest();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.

HeapFileWriter::HeapFileWriter(std::string path, std::shared_ptr<Schema> schema,
                               int64_t rows_per_page)
    : path_(std::move(path)), schema_(std::move(schema)), rows_per_page_(rows_per_page) {
  for (int c = 0; c < schema_->num_fields(); ++c) {
    staging_.emplace_back(schema_->field(c).type);
    staging_.back().Reserve(rows_per_page_);
  }
  stats_.resize(static_cast<size_t>(schema_->num_fields()));
}

Result<std::unique_ptr<HeapFileWriter>> HeapFileWriter::Create(
    const std::string& path, std::shared_ptr<Schema> schema, int64_t rows_per_page) {
  if (schema == nullptr || schema->num_fields() == 0) {
    return Status::InvalidArgument("heap file needs a non-empty schema");
  }
  if (rows_per_page <= 0 || rows_per_page % 2048 != 0) {
    return Status::InvalidArgument(
        "rows_per_page must be a positive multiple of the 2048-row kernel "
        "block, got " + std::to_string(rows_per_page));
  }
  auto writer = std::unique_ptr<HeapFileWriter>(
      new HeapFileWriter(path, std::move(schema), rows_per_page));
  writer->file_ = std::fopen(path.c_str(), "wb");
  if (writer->file_ == nullptr) {
    return Status::IOError("cannot create heap file '" + path + "'");
  }
  // Reserve the preamble slot; the real preamble lands in Finish once the
  // geometry and digest are known.
  std::vector<uint8_t> zeros(static_cast<size_t>(kPreambleBytes), 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), writer->file_) != zeros.size()) {
    return Status::IOError("cannot write heap file preamble to '" + path + "'");
  }
  const PageLayout layout = ComputeLayout(*writer->schema_, rows_per_page);
  writer->page_buf_.resize(static_cast<size_t>(layout.page_bytes));
  return writer;
}

HeapFileWriter::~HeapFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status HeapFileWriter::Append(const Row& row) {
  if (finished_) return Status::InvalidArgument("heap file writer already finished");
  const int num_cols = schema_->num_fields();
  if (static_cast<int>(row.size()) != num_cols) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema arity " +
                                   std::to_string(num_cols));
  }
  // Validate every cell before mutating any staging column (same contract
  // as Table::AppendRow: a failed append leaves the writer unchanged).
  for (int c = 0; c < num_cols; ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) continue;
    const DataType col_type = schema_->field(c).type;
    const bool ok = (v.type() == col_type) ||
                    (col_type == DataType::kDouble && v.is_numeric());
    if (!ok) {
      return Status::TypeError("cell " + std::to_string(c) + " has type " +
                               DataTypeToString(v.type()) + ", column expects " +
                               DataTypeToString(col_type));
    }
  }
  for (int c = 0; c < num_cols; ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    Status st = staging_[static_cast<size_t>(c)].AppendValue(v);
    CAPE_DCHECK(st.ok());  // lint:allow(check-in-status-fn) pre-validated above
    HeapFileColumnStats& cs = stats_[static_cast<size_t>(c)];
    if (v.is_null()) {
      ++cs.null_total;
      continue;
    }
    // Normalize through the column type so stats compare the way the
    // in-memory Column::Min/Max box values (int64 widens in double cols).
    const Value norm = schema_->field(c).type == DataType::kDouble &&
                               v.type() == DataType::kInt64
                           ? Value::Double(static_cast<double>(v.int64_value()))
                           : v;
    if (cs.min.is_null() || norm < cs.min) cs.min = norm;
    if (cs.max.is_null() || cs.max < norm) cs.max = norm;
  }
  ++rows_written_;
  if (staging_[0].size() == rows_per_page_) return FlushPage();
  return Status::OK();
}

Status HeapFileWriter::FlushPage() {
  const int64_t rows = staging_[0].size();
  if (rows == 0) return Status::OK();
  const PageLayout layout = ComputeLayout(*schema_, rows_per_page_);
  std::memset(page_buf_.data(), 0, page_buf_.size());
  uint8_t* buf = page_buf_.data();
  const int64_t row_begin = pages_written_ * rows_per_page_;
  std::memcpy(buf, &kPageMagic, sizeof(kPageMagic));
  std::memcpy(buf + 8, &row_begin, sizeof(row_begin));
  std::memcpy(buf + 16, &rows, sizeof(rows));
  for (int c = 0; c < schema_->num_fields(); ++c) {
    Column& col = staging_[static_cast<size_t>(c)];
    uint8_t* slice = buf + layout.slice_off[static_cast<size_t>(c)];
    const int64_t nulls = col.null_count();
    std::memcpy(slice, &nulls, sizeof(nulls));
    std::memcpy(slice + 8, col.validity_data(), static_cast<size_t>(rows));
    uint8_t* data = buf + layout.data_off[static_cast<size_t>(c)];
    switch (col.type()) {
      case DataType::kInt64:
        std::memcpy(data, col.int64_data(), static_cast<size_t>(rows) * 8);
        break;
      case DataType::kDouble:
        std::memcpy(data, col.double_data(), static_cast<size_t>(rows) * 8);
        break;
      case DataType::kString:
        std::memcpy(data, col.codes_data(), static_cast<size_t>(rows) * 4);
        break;
    }
    col.ClearRowsKeepDict();
  }
  const uint64_t checksum = ChecksumPayload(buf, layout.page_bytes);
  std::memcpy(buf + 24, &checksum, sizeof(checksum));
  if (std::fwrite(buf, 1, page_buf_.size(), file_) != page_buf_.size()) {
    return Status::IOError("short write to heap file '" + path_ + "'");
  }
  page_checksums_.push_back(checksum);
  ++pages_written_;
  return Status::OK();
}

Status HeapFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("heap file writer already finished");
  CAPE_RETURN_IF_ERROR(FlushPage());
  finished_ = true;

  const PageLayout layout = ComputeLayout(*schema_, rows_per_page_);
  std::vector<uint8_t> trailer;
  for (int c = 0; c < schema_->num_fields(); ++c) {
    const Field& f = schema_->field(c);
    PutString(&trailer, f.name);
    PutU8(&trailer, static_cast<uint8_t>(f.type));
    PutU8(&trailer, f.nullable ? 1 : 0);
  }
  for (const HeapFileColumnStats& cs : stats_) {
    PutI64(&trailer, cs.null_total);
    PutValue(&trailer, cs.min);
    PutValue(&trailer, cs.max);
  }
  for (const Column& col : staging_) {
    PutI64(&trailer, col.dict_size());
    for (int32_t code = 0; code < col.dict_size(); ++code) {
      PutString(&trailer, col.DictString(code));
    }
  }
  const int64_t trailer_offset = kPreambleBytes + pages_written_ * layout.page_bytes;
  if (std::fwrite(trailer.data(), 1, trailer.size(), file_) != trailer.size()) {
    return Status::IOError("short trailer write to heap file '" + path_ + "'");
  }

  Fnv64 digest;
  digest.UpdateU64(schema_->Digest());
  digest.UpdateI64(rows_written_);
  for (uint64_t cs : page_checksums_) digest.UpdateU64(cs);
  digest.Update(trailer.data(), trailer.size());

  std::vector<uint8_t> preamble;
  preamble.reserve(static_cast<size_t>(kPreambleBytes));
  PutBytes(&preamble, kMagic, sizeof(kMagic));
  PutU32(&preamble, kVersion);
  PutU32(&preamble, static_cast<uint32_t>(schema_->num_fields()));
  PutI64(&preamble, rows_written_);
  PutI64(&preamble, rows_per_page_);
  PutI64(&preamble, layout.page_bytes);
  PutI64(&preamble, pages_written_);
  PutI64(&preamble, trailer_offset);
  PutI64(&preamble, static_cast<int64_t>(trailer.size()));
  PutU64(&preamble, digest.digest());
  PutU64(&preamble, HashBytes(preamble.data(), preamble.size()));
  preamble.resize(static_cast<size_t>(kPreambleBytes), 0);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(preamble.data(), 1, preamble.size(), file_) != preamble.size() ||
      std::fflush(file_) != 0) {
    return Status::IOError("cannot finalize heap file '" + path_ + "'");
  }
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader.

HeapFile::~HeapFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::shared_ptr<HeapFile>> HeapFile::Open(const std::string& path) {
  auto file = std::shared_ptr<HeapFile>(new HeapFile());
  file->path_ = path;
  file->fd_ = ::open(path.c_str(), O_RDONLY);  // lint:allow(raw-file-io) storage owns file IO
  if (file->fd_ < 0) {
    return Status::IOError("cannot open heap file '" + path + "'");
  }
  uint8_t preamble[kPreambleBytes];
  if (::pread(file->fd_, preamble, sizeof(preamble), 0) !=
      static_cast<ssize_t>(sizeof(preamble))) {
    return Status::IOError("heap file '" + path + "' has no preamble");
  }
  if (std::memcmp(preamble, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("'" + path + "' is not a CAPE heap file");
  }
  size_t pos = sizeof(kMagic);
  auto take = [&](void* out, size_t n) {
    std::memcpy(out, preamble + pos, n);
    pos += n;
  };
  uint32_t version, num_cols;
  int64_t trailer_offset, trailer_bytes;
  take(&version, 4);
  take(&num_cols, 4);
  take(&file->num_rows_, 8);
  take(&file->rows_per_page_, 8);
  take(&file->page_bytes_, 8);
  take(&file->num_pages_, 8);
  take(&trailer_offset, 8);
  take(&trailer_bytes, 8);
  take(&file->content_digest_, 8);
  const uint64_t want_checksum = HashBytes(preamble, pos);
  uint64_t got_checksum;
  take(&got_checksum, 8);
  if (version != kVersion) {
    return Status::IOError("heap file '" + path + "' has unsupported version " +
                           std::to_string(version));
  }
  if (want_checksum != got_checksum) {
    return Status::IOError("heap file '" + path + "' preamble checksum mismatch");
  }
  if (num_cols == 0 || file->num_rows_ < 0 || file->rows_per_page_ <= 0 ||
      trailer_bytes < 0 ||
      file->num_pages_ !=
          (file->num_rows_ + file->rows_per_page_ - 1) / file->rows_per_page_) {
    return Status::IOError("heap file '" + path + "' has inconsistent geometry");
  }

  std::vector<uint8_t> trailer(static_cast<size_t>(trailer_bytes));
  if (trailer_bytes > 0 &&
      ::pread(file->fd_, trailer.data(), trailer.size(), trailer_offset) !=
          static_cast<ssize_t>(trailer.size())) {
    return Status::IOError("heap file '" + path + "' trailer unreadable");
  }
  Cursor cur(trailer.data(), trailer.size());
  std::vector<Field> fields;
  for (uint32_t c = 0; c < num_cols; ++c) {
    Field f;
    CAPE_ASSIGN_OR_RETURN(f.name, cur.String());
    CAPE_ASSIGN_OR_RETURN(uint8_t type, cur.U8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::IOError("heap file '" + path + "' has bad column type");
    }
    f.type = static_cast<DataType>(type);
    CAPE_ASSIGN_OR_RETURN(uint8_t nullable, cur.U8());
    f.nullable = nullable != 0;
    fields.push_back(std::move(f));
  }
  for (uint32_t c = 0; c < num_cols; ++c) {
    HeapFileColumnStats cs;
    CAPE_ASSIGN_OR_RETURN(cs.null_total, cur.I64());
    CAPE_ASSIGN_OR_RETURN(cs.min, cur.TakeValue());
    CAPE_ASSIGN_OR_RETURN(cs.max, cur.TakeValue());
    file->stats_.push_back(std::move(cs));
  }
  for (uint32_t c = 0; c < num_cols; ++c) {
    CAPE_ASSIGN_OR_RETURN(int64_t dict_size, cur.I64());
    if (dict_size < 0) return Status::IOError("heap file dictionary underflow");
    std::vector<std::string> dict;
    dict.reserve(static_cast<size_t>(dict_size));
    for (int64_t i = 0; i < dict_size; ++i) {
      CAPE_ASSIGN_OR_RETURN(std::string entry, cur.String());
      dict.push_back(std::move(entry));
    }
    file->dicts_.push_back(std::move(dict));
  }
  if (!cur.exhausted()) {
    return Status::IOError("heap file '" + path + "' has trailing trailer bytes");
  }

  file->schema_ = Schema::Make(std::move(fields));
  const PageLayout layout = ComputeLayout(*file->schema_, file->rows_per_page_);
  if (layout.page_bytes != file->page_bytes_) {
    return Status::IOError("heap file '" + path + "' page geometry mismatch");
  }
  file->col_offsets_ = layout.slice_off;
  file->data_offsets_ = layout.data_off;
  return file;
}

Status HeapFile::ReadPage(int64_t page, uint8_t* buf) const {
  if (page < 0 || page >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(page) + " out of range [0, " +
                              std::to_string(num_pages_) + ")");
  }
  CAPE_FAILPOINT("storage.page_read");
  const int64_t offset = kPreambleBytes + page * page_bytes_;
  if (::pread(fd_, buf, static_cast<size_t>(page_bytes_), offset) !=
      static_cast<ssize_t>(page_bytes_)) {
    return Status::IOError("short page read from heap file '" + path_ + "'");
  }
  uint64_t magic, checksum;
  int64_t row_begin, row_count;
  std::memcpy(&magic, buf, 8);
  std::memcpy(&row_begin, buf + 8, 8);
  std::memcpy(&row_count, buf + 16, 8);
  std::memcpy(&checksum, buf + 24, 8);
  if (magic != kPageMagic || row_begin != page * rows_per_page_ || row_count <= 0 ||
      row_count > rows_per_page_ || row_begin + row_count > num_rows_) {
    return Status::IOError("heap file '" + path_ + "' page " + std::to_string(page) +
                           " has a corrupt header");
  }
  if (ChecksumPayload(buf, page_bytes_) != checksum) {
    return Status::IOError("heap file '" + path_ + "' page " + std::to_string(page) +
                           " failed its checksum");
  }
  return Status::OK();
}

Status HeapFile::ParsePage(const uint8_t* buf, int64_t* row_begin, int* row_count,
                           std::vector<ColumnChunk>* chunks) const {
  int64_t rows;
  std::memcpy(row_begin, buf + 8, 8);
  std::memcpy(&rows, buf + 16, 8);
  *row_count = static_cast<int>(rows);
  chunks->clear();
  chunks->reserve(static_cast<size_t>(schema_->num_fields()));
  for (int c = 0; c < schema_->num_fields(); ++c) {
    const uint8_t* slice = buf + col_offsets_[static_cast<size_t>(c)];
    const uint8_t* data = buf + data_offsets_[static_cast<size_t>(c)];
    ColumnChunk ch;
    std::memcpy(&ch.null_count, slice, 8);
    ch.validity = slice + 8;
    switch (schema_->field(c).type) {
      case DataType::kInt64:
        ch.i64 = reinterpret_cast<const int64_t*>(data);
        break;
      case DataType::kDouble:
        ch.f64 = reinterpret_cast<const double*>(data);
        break;
      case DataType::kString:
        ch.codes = reinterpret_cast<const int32_t*>(data);
        break;
    }
    chunks->push_back(ch);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

Status WriteTableToHeapFile(const Table& table, const std::string& path,
                            int64_t rows_per_page) {
  if (!table.rows_resident()) {
    return Status::InvalidArgument("WriteTableToHeapFile requires resident rows");
  }
  CAPE_ASSIGN_OR_RETURN(auto writer,
                        HeapFileWriter::Create(path, table.schema(), rows_per_page));
  // analyzer:allow-next-line(cancellation) offline file builder, not request path
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    CAPE_RETURN_IF_ERROR(writer->Append(table.GetRow(r)));
  }
  return writer->Finish();
}

}  // namespace cape
