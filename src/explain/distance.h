#ifndef CAPE_EXPLAIN_DISTANCE_H_
#define CAPE_EXPLAIN_DISTANCE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "fd/attr_set.h"
#include "relational/table.h"

namespace cape {

/// Per-attribute distance function d_A : DOM(A)² -> [0,1] (Definition 9).
/// Implementations must be symmetric with d(v, v) = 0.
class AttributeDistance {
 public:
  virtual ~AttributeDistance() = default;
  virtual double Distance(const Value& a, const Value& b) const = 0;
};

/// 0 when equal, 1 otherwise — the default for categorical attributes.
class CategoricalDistance final : public AttributeDistance {
 public:
  double Distance(const Value& a, const Value& b) const override;
};

/// |a-b| / scale, clamped to [0,1], with `scale` the attribute's value
/// range. Smooth alternative to the banded default below.
class NumericDistance final : public AttributeDistance {
 public:
  explicit NumericDistance(double scale) : scale_(scale <= 0 ? 1.0 : scale) {}
  double Distance(const Value& a, const Value& b) const override;

 private:
  double scale_;
};

/// The paper's class-based default specialized to numerics: equal values
/// have distance 0, values within `band` of each other (same "class") have
/// `near` (default 0.5), everything else 1. Makes adjacent years closer
/// than distant ones without letting neighbors collapse to near-zero
/// distance (which would let trivially-similar tuples dominate the score).
class BandedNumericDistance final : public AttributeDistance {
 public:
  explicit BandedNumericDistance(double band, double near_distance = 0.5)
      : band_(band <= 0 ? 1.0 : band), near_(near_distance) {}
  double Distance(const Value& a, const Value& b) const override;

 private:
  double band_;
  double near_;
};

/// The paper's class-based default: the attribute's domain is partitioned
/// into classes; equal values have distance 0, same-class values
/// `within_class`, different-class values 1. Unmapped values form their own
/// singleton class.
class ClassBasedDistance final : public AttributeDistance {
 public:
  ClassBasedDistance(std::unordered_map<std::string, int> value_to_class,
                     double within_class = 0.5);
  double Distance(const Value& a, const Value& b) const override;

 private:
  std::unordered_map<std::string, int> value_to_class_;
  double within_class_;
};

/// The weighted tuple distance of Definition 9: attributes present in only
/// one tuple contribute the maximal distance 1; the result is normalized by
/// the total weight of the attribute union so tuples with different schemas
/// remain comparable.
class DistanceModel {
 public:
  /// Defaults: equal weights 1/|R|; BandedNumericDistance(range/8) for
  /// numeric columns, CategoricalDistance otherwise.
  static DistanceModel MakeDefault(const Table& table);

  /// d(t1, t2) where ti has attributes `attrsi` and values `valsi` in
  /// ascending attribute order.
  double Distance(AttrSet attrs1, const Row& vals1, AttrSet attrs2, const Row& vals2) const;

  /// d↓: the smallest possible distance between tuples over `attrs1` and
  /// `attrs2` — attributes in the symmetric difference necessarily
  /// contribute 1 (Section 3.5).
  double LowerBound(AttrSet attrs1, AttrSet attrs2) const;

  void SetWeight(int attr, double weight);
  void SetDistance(int attr, std::shared_ptr<AttributeDistance> distance);

  double weight(int attr) const { return weights_[static_cast<size_t>(attr)]; }
  int num_attrs() const { return static_cast<int>(weights_.size()); }

 private:
  DistanceModel() = default;

  std::vector<double> weights_;
  std::vector<std::shared_ptr<AttributeDistance>> distances_;
};

}  // namespace cape

#endif  // CAPE_EXPLAIN_DISTANCE_H_
