#ifndef CAPE_EXPLAIN_EXPLAINER_INTERNAL_H_
#define CAPE_EXPLAIN_EXPLAINER_INTERNAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/result.h"
#include "explain/explainer.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape::explain_internal {

/// Caches γ_{attrs, agg(A)}(R) tables shared by every (P, P') pair whose
/// refinement has the same attribute set. Thread-safe: concurrent workers
/// requesting the same key serialize on that entry (one computes, the rest
/// reuse), while distinct keys compute in parallel. The tables depend only
/// on the relation — never on the user question — so an ExplainSession
/// keeps one instance alive across its whole batch.
class AggDataCache {
 public:
  explicit AggDataCache(const Table& relation) : relation_(relation) {}

  const Table& relation() const { return relation_; }

  Result<TablePtr> Get(AttrSet attrs, AggFunc agg, int agg_attr, StopToken* stop)
      CAPE_EXCLUDES(mu_) {
    const std::string key = std::to_string(attrs.bits()) + "|" +
                            std::to_string(static_cast<int>(agg)) + "|" +
                            std::to_string(agg_attr);
    std::shared_ptr<Entry> entry;
    {
      MutexLock lock(mu_);
      std::shared_ptr<Entry>& slot = cache_[key];
      if (slot == nullptr) slot = std::make_shared<Entry>();
      entry = slot;
    }
    MutexLock lock(entry->mu);
    if (entry->table != nullptr) return entry->table;
    AggregateSpec spec;
    spec.func = agg;
    spec.input_col = agg_attr;
    spec.output_name = "agg";
    // A failed computation (deadline mid-aggregation) is not cached: the
    // run is ending anyway, and a later retry must not see a poisoned slot.
    CAPE_ASSIGN_OR_RETURN(TablePtr data,
                          GroupByAggregate(relation_, attrs.ToIndices(), {spec}, stop));
    entry->table = data;
    return data;
  }

  size_t num_entries() const CAPE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_.size();
  }

 private:
  struct Entry {
    Mutex mu;
    TablePtr table CAPE_GUARDED_BY(mu);
  };

  const Table& relation_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> cache_ CAPE_GUARDED_BY(mu_);
};

/// Question-independent work memoized across one ExplainSession's batch:
/// the γ tables above and the refinement adjacency (for each pattern index,
/// the indices — in enumeration order — of the patterns refining it, which
/// the one-shot path rediscovers with an O(N_P) scan per relevant pattern
/// on every question). Reusing the adjacency preserves the deterministic
/// pair-list order, so session answers are byte-identical to one-shot
/// Explain() calls.
struct SessionState {
  /// Relation the session is bound to (the first question's); later
  /// questions must target the same table.
  const Table* relation = nullptr;
  std::unique_ptr<AggDataCache> agg_cache;
  bool adjacency_built = false;
  std::vector<std::vector<int64_t>> refinements;

  /// Cumulative counters across the session's questions.
  int64_t questions_answered = 0;
};

/// Shared generator implementation (see explainer.cc). `state` may be
/// nullptr (one-shot call, nothing memoized) or an ExplainSession's state.
Result<ExplainResult> RunExplainWithState(const UserQuestion& q, const PatternSet& patterns,
                                          const DistanceModel& distance,
                                          const ExplainConfig& config, bool optimized,
                                          SessionState* state);

}  // namespace cape::explain_internal

#endif  // CAPE_EXPLAIN_EXPLAINER_INTERNAL_H_
