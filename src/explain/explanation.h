#ifndef CAPE_EXPLAIN_EXPLANATION_H_
#define CAPE_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "fd/attr_set.h"
#include "pattern/pattern.h"
#include "relational/table.h"

namespace cape {

/// A scored candidate explanation E = (P, P', t') (Definition 7): t' is a
/// counterbalance — a tuple over (F' ∪ V, agg(A)) that agrees with the
/// question on F, holds locally under the refinement P', and deviates from
/// its predicted value in the opposite direction of the question.
struct Explanation {
  Pattern relevant_pattern;    // P
  Pattern refinement_pattern;  // P'

  /// The counterbalance tuple t': attributes F' ∪ V (ascending order) with
  /// their values, plus the aggregate value.
  AttrSet tuple_attrs;
  Row tuple_values;
  double agg_value = 0.0;

  /// g_{P', t'[F']}(t'[V]).
  double predicted = 0.0;
  /// dev_{P'}(t') = agg_value - predicted (Definition 8).
  double deviation = 0.0;
  /// d(t[G], t'[F' ∪ V]) (Definition 9).
  double distance = 0.0;
  /// NORM of Definition 10 (the question's own aggregate context).
  double norm = 0.0;
  /// Definition 10.
  double score = 0.0;

  /// "(AX, ICDE, 2007, 6)  score=13.78" style rendering.
  std::string ToString(const Schema& schema) const;
};

/// Renders a ranked explanation list as the paper's Tables 3-7 layout.
std::string RenderExplanationTable(const std::vector<Explanation>& explanations,
                                   const Schema& schema);

}  // namespace cape

#endif  // CAPE_EXPLAIN_EXPLANATION_H_
