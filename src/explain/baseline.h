#ifndef CAPE_EXPLAIN_BASELINE_H_
#define CAPE_EXPLAIN_BASELINE_H_

#include "common/result.h"
#include "explain/explainer.h"

namespace cape {

/// The pattern-free baseline of Appendix A.2: counterbalances are tuples of
/// the question's own query result Q(R) whose aggregate deviates from the
/// result's average in the opposite direction, scored by deviation over
/// distance. Because it is ignorant of patterns it prefers tuples whose
/// absolute value is high/low even when that is entirely expected (the
/// failure mode Tables 6 and 7 illustrate).
Result<ExplainResult> BaselineExplain(const UserQuestion& question,
                                      const DistanceModel& distance,
                                      const ExplainConfig& config);

}  // namespace cape

#endif  // CAPE_EXPLAIN_BASELINE_H_
