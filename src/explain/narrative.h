#ifndef CAPE_EXPLAIN_NARRATIVE_H_
#define CAPE_EXPLAIN_NARRATIVE_H_

#include <string>

#include "explain/explanation.h"
#include "explain/user_question.h"

namespace cape {

/// Renders an explanation as the English interpretation the paper gives in
/// Example 5:
///
///   "Even though AX, like many other authors, follows the pattern
///    [author]: year ~ count(*), its count(*) for (author=AX, venue=SIGKDD,
///    year=2007) is lower than expected, which may be explained by
///    (author=AX, venue=ICDE, year=2007) having count(*) = 10 — 5.5 above
///    the 4.5 its pattern predicts."
///
/// Pure string rendering over an already-computed explanation; useful for
/// CLI/report output (see examples/quickstart.cpp).
std::string NarrateExplanation(const UserQuestion& question, const Explanation& explanation,
                               const Schema& schema);

}  // namespace cape

#endif  // CAPE_EXPLAIN_NARRATIVE_H_
