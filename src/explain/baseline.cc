#include "explain/baseline.h"

#include <algorithm>
#include <cmath>

#include "common/cancellation.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "stats/descriptive.h"

namespace cape {

Result<ExplainResult> BaselineExplain(const UserQuestion& q,
                                      const DistanceModel& distance,
                                      const ExplainConfig& config) {
  ExplainResult result;
  Stopwatch total;
  StopToken stop = config.MakeStopToken();

  AggregateSpec spec;
  spec.func = q.agg;
  spec.input_col = q.agg_attr;
  spec.output_name = "agg";
  const std::vector<int> g = q.group_attrs.ToIndices();
  CAPE_ASSIGN_OR_RETURN(TablePtr data, GroupByAggregate(*q.relation, g, {spec}, &stop));
  const int agg_col = static_cast<int>(g.size());
  // MakeUserQuestion rejects non-numeric aggregates; guard hand-built
  // questions too (min/max over a string attribute aggregates to strings).
  if (!IsNumericType(data->column(agg_col).type())) {
    return Status::TypeError(std::string("baseline requires a numeric aggregate, got ") +
                             DataTypeToString(data->column(agg_col).type()));
  }

  RunningStats stats;
  for (int64_t row = 0; row < data->num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(&stop);
    if (!data->column(agg_col).IsNull(row)) stats.Add(data->column(agg_col).GetNumeric(row));
  }
  const double avg = stats.mean();
  const double isLow = q.dir == Direction::kLow ? 1.0 : -1.0;

  std::vector<Explanation> candidates;
  for (int64_t row = 0; row < data->num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(&stop);
    result.profile.num_tuples_checked += 1;
    if (data->column(agg_col).IsNull(row)) continue;
    Row values;
    values.reserve(g.size());
    for (size_t i = 0; i < g.size(); ++i) {
      values.push_back(data->GetValue(row, static_cast<int>(i)));
    }
    if (values == q.group_values) continue;  // t' != t
    const double y = data->column(agg_col).GetNumeric(row);
    const double dev = y - avg;
    // Counterbalance: deviation from the average in the opposite direction.
    if (q.dir == Direction::kLow ? dev <= 0.0 : dev >= 0.0) continue;

    Explanation e;
    e.tuple_attrs = q.group_attrs;
    e.tuple_values = std::move(values);
    e.agg_value = y;
    e.predicted = avg;
    e.deviation = dev;
    e.distance = distance.Distance(q.group_attrs, q.group_values, q.group_attrs,
                                   e.tuple_values);
    e.norm = 1.0;
    e.score = dev * isLow / (e.distance + config.epsilon);
    result.profile.num_candidates += 1;
    candidates.push_back(std::move(e));
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Explanation& a, const Explanation& b) { return a.score > b.score; });
  if (static_cast<int>(candidates.size()) > config.top_k) {
    candidates.resize(static_cast<size_t>(config.top_k));
  }
  result.explanations = std::move(candidates);
  result.profile.total_ns = total.ElapsedNanos();
  return result;
}

}  // namespace cape
