#ifndef CAPE_EXPLAIN_USER_QUESTION_H_
#define CAPE_EXPLAIN_USER_QUESTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fd/attr_set.h"
#include "relational/operators.h"
#include "relational/table.h"

namespace cape {

/// Whether the user considers the aggregate value higher or lower than
/// expected (Definition 1).
enum class Direction : int { kHigh = 0, kLow = 1 };

const char* DirectionToString(Direction dir);

/// A user question φ = (Q, R, t, dir) over Q = γ_{G, agg(A)}(R)
/// (Definition 1). Group values are stored in ascending attribute order.
struct UserQuestion {
  TablePtr relation;  // R
  AttrSet group_attrs;  // G
  AggFunc agg = AggFunc::kCount;
  int agg_attr = AggregateSpec::kCountStar;  // A (kCountStar for count(*))
  Row group_values;    // t[G], aligned with group_attrs.ToIndices()
  double result_value = 0.0;  // t[agg(A)]
  Direction dir = Direction::kLow;

  /// t[S] for S ⊆ G: the question tuple projected onto `attrs`
  /// (ascending attribute order). Attributes outside G are ignored.
  Row ProjectGroupValues(AttrSet attrs) const;

  /// "why is count(*) = 1 for (author=AX, venue=SIGKDD, year=2007) LOW?"
  std::string ToString() const;

  /// The provenance of the question's query answer: the input tuples of R
  /// the aggregate was computed from, σ_{G = t[G]}(R). Provided for the
  /// contrast the paper's introduction draws — for outlier questions the
  /// provenance is exactly the unremarkable data that *cannot* explain the
  /// outcome, which is why CAPE looks outside it.
  Result<TablePtr> Provenance() const;
};

/// Builds and validates a user question: resolves names, verifies that the
/// group exists in Q(R), and computes t[agg(A)] from the data (so callers
/// cannot ask about a tuple that is not a query answer). `agg_attr` is
/// empty for count(*). `group_values` align with `group_by` order.
Result<UserQuestion> MakeUserQuestion(TablePtr relation,
                                      const std::vector<std::string>& group_by,
                                      const std::vector<Value>& group_values, AggFunc agg,
                                      const std::string& agg_attr, Direction dir);

/// The paper's open problem (Section 7): "how to deal with missing values
/// in user queries — e.g., if AX did not have any SIGKDD paper in 2007".
/// This builds a `low` count(*) question about a group that does NOT appear
/// in Q(R), treating its count as 0. Only count(*) admits this reading
/// (sum/min/max of an empty group are undefined, not zero), and each
/// individual group value must occur somewhere in the relation so the
/// question is about a missing *combination* rather than a typo.
/// Downstream explanation generation works unchanged: relevance still
/// requires a pattern to hold locally on t[F], which the fragment's other
/// predictor values provide.
Result<UserQuestion> MakeMissingValueQuestion(TablePtr relation,
                                              const std::vector<std::string>& group_by,
                                              const std::vector<Value>& group_values);

}  // namespace cape

#endif  // CAPE_EXPLAIN_USER_QUESTION_H_
