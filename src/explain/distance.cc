#include "explain/distance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cape {

double CategoricalDistance::Distance(const Value& a, const Value& b) const {
  return a == b ? 0.0 : 1.0;
}

double NumericDistance::Distance(const Value& a, const Value& b) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null() || !a.is_numeric() || !b.is_numeric()) return 1.0;
  return std::clamp(std::fabs(a.AsDouble() - b.AsDouble()) / scale_, 0.0, 1.0);
}

double BandedNumericDistance::Distance(const Value& a, const Value& b) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null() || !a.is_numeric() || !b.is_numeric()) return 1.0;
  return std::fabs(a.AsDouble() - b.AsDouble()) <= band_ ? near_ : 1.0;
}

ClassBasedDistance::ClassBasedDistance(std::unordered_map<std::string, int> value_to_class,
                                       double within_class)
    : value_to_class_(std::move(value_to_class)), within_class_(within_class) {}

double ClassBasedDistance::Distance(const Value& a, const Value& b) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null()) return 1.0;
  auto ca = value_to_class_.find(a.ToString());
  auto cb = value_to_class_.find(b.ToString());
  if (ca == value_to_class_.end() || cb == value_to_class_.end()) return 1.0;
  return ca->second == cb->second ? within_class_ : 1.0;
}

DistanceModel DistanceModel::MakeDefault(const Table& table) {
  DistanceModel model;
  const int n = table.num_columns();
  model.weights_.assign(static_cast<size_t>(n), n > 0 ? 1.0 / n : 0.0);
  model.distances_.resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    const Column& col = table.column(c);
    if (IsNumericType(col.type())) {
      const Value lo = col.Min();
      const Value hi = col.Max();
      const double range =
          (lo.is_null() || hi.is_null()) ? 1.0 : hi.AsDouble() - lo.AsDouble();
      model.distances_[static_cast<size_t>(c)] =
          std::make_shared<BandedNumericDistance>(std::max(1.0, range / 8.0));
    } else {
      model.distances_[static_cast<size_t>(c)] = std::make_shared<CategoricalDistance>();
    }
  }
  return model;
}

double DistanceModel::Distance(AttrSet attrs1, const Row& vals1, AttrSet attrs2,
                               const Row& vals2) const {
  const AttrSet all = attrs1.Union(attrs2);
  double total_weight = 0.0;
  double sum = 0.0;
  // Walk the union in ascending attribute order, tracking positions within
  // each tuple's value row.
  size_t i1 = 0;
  size_t i2 = 0;
  for (int attr : all.ToIndices()) {
    const double w = weights_[static_cast<size_t>(attr)];
    total_weight += w;
    const bool in1 = attrs1.Contains(attr);
    const bool in2 = attrs2.Contains(attr);
    double d;
    if (in1 && in2) {
      d = distances_[static_cast<size_t>(attr)]->Distance(vals1[i1], vals2[i2]);
    } else {
      d = 1.0;  // attribute missing from one tuple: maximal distance (Def. 9)
    }
    sum += w * d * d;
    if (in1) ++i1;
    if (in2) ++i2;
  }
  if (total_weight <= 0.0) return 0.0;
  return std::sqrt(sum / total_weight);
}

double DistanceModel::LowerBound(AttrSet attrs1, AttrSet attrs2) const {
  const AttrSet all = attrs1.Union(attrs2);
  const AttrSet shared = attrs1.Intersect(attrs2);
  double total_weight = 0.0;
  double sum = 0.0;
  for (int attr : all.ToIndices()) {
    const double w = weights_[static_cast<size_t>(attr)];
    total_weight += w;
    if (!shared.Contains(attr)) sum += w;  // d = 1 is forced; d² = 1
  }
  if (total_weight <= 0.0) return 0.0;
  return std::sqrt(sum / total_weight);
}

void DistanceModel::SetWeight(int attr, double weight) {
  CAPE_CHECK(attr >= 0 && attr < num_attrs());
  weights_[static_cast<size_t>(attr)] = weight;
}

void DistanceModel::SetDistance(int attr, std::shared_ptr<AttributeDistance> distance) {
  CAPE_CHECK(attr >= 0 && attr < num_attrs());
  distances_[static_cast<size_t>(attr)] = std::move(distance);
}

}  // namespace cape
