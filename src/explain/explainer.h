#ifndef CAPE_EXPLAIN_EXPLAINER_H_
#define CAPE_EXPLAIN_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "explain/distance.h"
#include "explain/explanation.h"
#include "explain/user_question.h"
#include "pattern/pattern_set.h"

namespace cape {

struct ExplainConfig {
  /// Number of explanations to return (top-k, Section 3.4).
  int top_k = 10;
  /// Added to denominators (distance and NORM) to avoid division by zero
  /// (footnote 2 of the paper).
  double epsilon = 1e-9;
  /// EXPL-GEN-OPT ablation knobs (both on by default): process (P, P')
  /// pairs in decreasing score↑ order and stop at the top-k floor; and
  /// apply the per-fragment "more accurate bound" while scanning tuples
  /// (Section 3.5). The naive generator ignores both.
  bool prune_pairs = true;
  bool prune_locals = true;
};

/// Counters for Figures 6a-6c and for tests of the pruning logic.
struct ExplainProfile {
  int64_t total_ns = 0;
  int64_t num_relevant_patterns = 0;
  int64_t num_refinement_pairs = 0;   // (P, P') combinations considered
  int64_t num_pairs_pruned = 0;       // pairs skipped via the score bound
  int64_t num_tuples_checked = 0;     // candidate t' examined
  int64_t num_candidates = 0;         // candidates passing Definition 7
};

struct ExplainResult {
  std::vector<Explanation> explanations;  // descending score
  ExplainProfile profile;
};

/// Generates the top-k counterbalance explanations for a user question from
/// a set of mined ARPs (Section 3).
class ExplanationGenerator {
 public:
  virtual ~ExplanationGenerator() = default;

  virtual std::string name() const = 0;

  virtual Result<ExplainResult> Explain(const UserQuestion& question,
                                        const PatternSet& patterns,
                                        const DistanceModel& distance,
                                        const ExplainConfig& config) = 0;
};

/// EXPL-GEN-NAIVE: Algorithm 1 — checks every candidate explanation.
std::unique_ptr<ExplanationGenerator> MakeNaiveExplainer();

/// EXPL-GEN-OPT: Section 3.5 — processes (P, P') pairs in decreasing order
/// of their score upper bound score↑(φ, P, P') and prunes pairs (and stops
/// entirely) once the bound cannot beat the current top-k floor.
std::unique_ptr<ExplanationGenerator> MakeOptimizedExplainer();

}  // namespace cape

#endif  // CAPE_EXPLAIN_EXPLAINER_H_
