#ifndef CAPE_EXPLAIN_EXPLAINER_H_
#define CAPE_EXPLAIN_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "explain/distance.h"
#include "explain/explanation.h"
#include "explain/user_question.h"
#include "pattern/pattern_set.h"

namespace cape {

struct ExplainConfig {
  /// Number of explanations to return (top-k, Section 3.4).
  int top_k = 10;
  /// Added to denominators (distance and NORM) to avoid division by zero
  /// (footnote 2 of the paper).
  double epsilon = 1e-9;
  /// EXPL-GEN-OPT ablation knobs (both on by default): process (P, P')
  /// pairs in decreasing score↑ order and stop at the top-k floor; and
  /// apply the per-fragment "more accurate bound" while scanning tuples
  /// (Section 3.5). The naive generator ignores both.
  bool prune_pairs = true;
  bool prune_locals = true;

  /// Worker threads for the online scoring phase: the (P, P') candidate
  /// pairs are partitioned across workers of the shared ThreadPool, each
  /// scoring into its own candidate pool with a shared monotone top-k floor
  /// so the Section 3.5 pruning keeps firing across threads. The merged
  /// top-k is byte-identical to the single-threaded run at any thread count
  /// (DESIGN.md §9). 1 = fully inline, no pool involvement.
  int num_threads = 1;

  /// Request lifecycle: when deadline_ms > 0 the generator stops
  /// cooperatively after that many milliseconds of wall time and returns the
  /// best explanations found so far with ExplainResult::partial set;
  /// cancel_token allows another thread to stop the run the same way.
  /// 0 = no deadline.
  int64_t deadline_ms = 0;
  CancellationToken cancel_token;

  /// StopToken for this request (infinite when deadline_ms <= 0 and no
  /// cancellable token was provided).
  StopToken MakeStopToken() const {
    return StopToken(deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms)
                                     : Deadline::Infinite(),
                     cancel_token);
  }
};

/// Counters for Figures 6a-6c and for tests of the pruning logic.
///
/// `total_ns` is wall time; `cpu_ns` is the scoring work summed across
/// workers and may exceed `total_ns` when num_threads > 1 (their ratio is
/// the effective scoring parallelism). The work counters
/// (num_tuples_checked, num_pairs_pruned, ...) are exact totals but — like
/// any pruning statistic — can vary with thread count and timing, since a
/// faster-rising shared floor prunes more; only the returned top-k is
/// guaranteed identical.
struct ExplainProfile {
  int64_t total_ns = 0;               // wall time of the whole request
  int64_t cpu_ns = 0;                 // scoring time summed over workers
  int64_t num_relevant_patterns = 0;
  int64_t num_refinement_pairs = 0;   // (P, P') combinations considered
  int64_t num_pairs_pruned = 0;       // pairs skipped via the score bound
  int64_t num_tuples_checked = 0;     // candidate t' examined
  int64_t num_candidates = 0;         // candidates passing Definition 7
};

struct ExplainResult {
  std::vector<Explanation> explanations;  // descending score
  ExplainProfile profile;
  /// Set when the run stopped early (deadline/cancellation). `explanations`
  /// is then the top-k over the candidates scored before the stop — every
  /// entry is fully scored and also appears in the untimed run's candidate
  /// stream. `stopped_stage` names the stage the stop interrupted
  /// ("norm" or "refine").
  bool partial = false;
  StopReason stop_reason = StopReason::kNone;
  std::string stopped_stage;
};

/// Generates the top-k counterbalance explanations for a user question from
/// a set of mined ARPs (Section 3).
class ExplanationGenerator {
 public:
  virtual ~ExplanationGenerator() = default;

  virtual std::string name() const = 0;

  virtual Result<ExplainResult> Explain(const UserQuestion& question,
                                        const PatternSet& patterns,
                                        const DistanceModel& distance,
                                        const ExplainConfig& config) = 0;
};

/// EXPL-GEN-NAIVE: Algorithm 1 — checks every candidate explanation.
std::unique_ptr<ExplanationGenerator> MakeNaiveExplainer();

/// EXPL-GEN-OPT: Section 3.5 — processes (P, P') pairs in decreasing order
/// of their score upper bound score↑(φ, P, P') and prunes pairs (and stops
/// entirely) once the bound cannot beat the current top-k floor.
std::unique_ptr<ExplanationGenerator> MakeOptimizedExplainer();

}  // namespace cape

#endif  // CAPE_EXPLAIN_EXPLAINER_H_
