#ifndef CAPE_EXPLAIN_EXPLAIN_SESSION_H_
#define CAPE_EXPLAIN_EXPLAIN_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "explain/distance.h"
#include "explain/explainer.h"
#include "explain/user_question.h"
#include "pattern/pattern_set.h"

namespace cape::explain_internal {
// Defined in explainer_internal.h; held behind a unique_ptr so this public
// header never includes an internal one (tools/lint.py internal-include rule).
struct SessionState;
}  // namespace cape::explain_internal

namespace cape {

/// Answers a batch of user questions against one mined PatternSet,
/// memoizing the question-independent work the one-shot Explain() path
/// redoes per question: the γ_{attrs,agg} aggregate tables and the
/// refinement adjacency (which patterns refine which). This is the online
/// half of CAPE's offline/online split at serving granularity — mine once,
/// open a session, answer many questions.
///
/// Every answer is byte-identical to calling Engine::Explain() on the same
/// question: the memoized structures only skip recomputation, never change
/// the deterministic candidate order (DESIGN.md §11).
///
/// All questions in one session must target the relation of the first
/// question (the γ tables are per-relation). Not intended for concurrent
/// Explain() calls on the same session; open one session per serving thread
/// — they can all share one cached PatternSet.
class ExplainSession {
 public:
  ExplainSession(std::shared_ptr<const PatternSet> patterns, DistanceModel distance,
                 ExplainConfig config);
  ~ExplainSession();

  ExplainSession(ExplainSession&&) noexcept;
  ExplainSession& operator=(ExplainSession&&) noexcept;
  ExplainSession(const ExplainSession&) = delete;
  ExplainSession& operator=(const ExplainSession&) = delete;

  /// Answers one question. `optimized` selects EXPL-GEN-OPT over
  /// EXPL-GEN-NAIVE, exactly as in Engine::Explain.
  Result<ExplainResult> Explain(const UserQuestion& question, bool optimized = true);

  /// Answers questions in order; fails fast on the first error.
  Result<std::vector<ExplainResult>> ExplainBatch(const std::vector<UserQuestion>& questions,
                                                  bool optimized = true);

  const PatternSet& patterns() const { return *patterns_; }
  ExplainConfig& config() { return config_; }
  const ExplainConfig& config() const { return config_; }

  /// Questions answered so far.
  int64_t questions_answered() const;
  /// Distinct γ_{attrs,agg} tables memoized so far (grows sub-linearly in
  /// questions — that is the point of the session).
  size_t num_cached_agg_tables() const;

 private:
  std::shared_ptr<const PatternSet> patterns_;
  DistanceModel distance_;
  ExplainConfig config_;
  std::unique_ptr<explain_internal::SessionState> state_;
};

}  // namespace cape

#endif  // CAPE_EXPLAIN_EXPLAIN_SESSION_H_
