#include "explain/narrative.h"

#include <cmath>

#include "common/string_util.h"
#include "relational/operators.h"

namespace cape {

namespace {

std::string AggToString(AggFunc agg, int agg_attr, const Schema& schema) {
  std::string out = AggFuncToString(agg);
  out += "(";
  out += agg_attr == AggregateSpec::kCountStar ? "*" : schema.field(agg_attr).name;
  out += ")";
  return out;
}

std::string TupleToString(AttrSet attrs, const Row& values, const Schema& schema) {
  std::string out = "(";
  const std::vector<int> indices = attrs.ToIndices();
  for (size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.field(indices[i]).name + "=" + values[i].ToString();
  }
  return out + ")";
}

}  // namespace

std::string NarrateExplanation(const UserQuestion& question, const Explanation& explanation,
                               const Schema& schema) {
  const std::string agg = AggToString(question.agg, question.agg_attr, schema);
  const std::string question_tuple =
      TupleToString(question.group_attrs, question.group_values, schema);
  const std::string counterbalance_tuple =
      TupleToString(explanation.tuple_attrs, explanation.tuple_values, schema);
  const char* direction_phrase =
      question.dir == Direction::kLow ? "lower than expected" : "higher than expected";
  const char* opposite_phrase = question.dir == Direction::kLow ? "above" : "below";

  return StringFormat(
      "Even though the data follows the pattern %s, %s for %s is %s, which may be "
      "explained by %s having %s = %s — %s %s the %s its pattern predicts.",
      explanation.relevant_pattern.ToString(schema).c_str(), agg.c_str(),
      question_tuple.c_str(), direction_phrase, counterbalance_tuple.c_str(), agg.c_str(),
      StringFormat("%.4g", explanation.agg_value).c_str(),
      StringFormat("%.3g", std::fabs(explanation.deviation)).c_str(), opposite_phrase,
      StringFormat("%.4g", explanation.predicted).c_str());
}

}  // namespace cape
