#include "explain/user_question.h"

#include <algorithm>

#include "common/macros.h"
#include "relational/kernels.h"

namespace cape {

const char* DirectionToString(Direction dir) {
  return dir == Direction::kHigh ? "high" : "low";
}

Row UserQuestion::ProjectGroupValues(AttrSet attrs) const {
  Row out;
  const std::vector<int> g = group_attrs.ToIndices();
  for (size_t i = 0; i < g.size(); ++i) {
    if (attrs.Contains(g[i])) out.push_back(group_values[i]);
  }
  return out;
}

std::string UserQuestion::ToString() const {
  const Schema& schema = *relation->schema();
  std::string agg_str = AggFuncToString(agg);
  agg_str += "(";
  agg_str += agg_attr == AggregateSpec::kCountStar ? "*" : schema.field(agg_attr).name;
  agg_str += ")";
  std::string tuple = "(";
  const std::vector<int> g = group_attrs.ToIndices();
  for (size_t i = 0; i < g.size(); ++i) {
    if (i > 0) tuple += ", ";
    tuple += schema.field(g[i]).name + "=" + group_values[i].ToString();
  }
  tuple += ")";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", result_value);
  return "why is " + agg_str + " = " + buf + " for " + tuple + " " +
         DirectionToString(dir) + "?";
}

Result<TablePtr> UserQuestion::Provenance() const {
  std::vector<std::pair<int, Value>> conditions;
  const std::vector<int> g = group_attrs.ToIndices();
  for (size_t i = 0; i < g.size(); ++i) conditions.emplace_back(g[i], group_values[i]);
  return FilterEquals(*relation, conditions);
}

namespace {

/// Shared front half of question construction: attribute resolution,
/// duplicate checks, and normalization of values to ascending attribute
/// order. Leaves agg/dir/result_value for the caller.
Result<UserQuestion> ResolveQuestionSkeleton(TablePtr relation,
                                             const std::vector<std::string>& group_by,
                                             const std::vector<Value>& group_values) {
  if (relation == nullptr) return Status::InvalidArgument("user question requires a relation");
  if (group_by.empty()) return Status::InvalidArgument("user question requires group-by attributes");
  if (group_by.size() != group_values.size()) {
    return Status::InvalidArgument("group_by and group_values size mismatch");
  }
  UserQuestion uq;
  uq.relation = relation;
  const Schema& schema = *relation->schema();
  std::vector<std::pair<int, Value>> attr_values;
  for (size_t i = 0; i < group_by.size(); ++i) {
    CAPE_ASSIGN_OR_RETURN(int idx, schema.GetFieldIndexChecked(group_by[i]));
    if (uq.group_attrs.Contains(idx)) {
      return Status::InvalidArgument("duplicate group-by attribute '" + group_by[i] + "'");
    }
    uq.group_attrs.Add(idx);
    attr_values.emplace_back(idx, group_values[i]);
  }
  std::sort(attr_values.begin(), attr_values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [idx, value] : attr_values) uq.group_values.push_back(std::move(value));
  return uq;
}

}  // namespace

Result<UserQuestion> MakeUserQuestion(TablePtr relation,
                                      const std::vector<std::string>& group_by,
                                      const std::vector<Value>& group_values, AggFunc agg,
                                      const std::string& agg_attr, Direction dir) {
  CAPE_ASSIGN_OR_RETURN(UserQuestion uq,
                        ResolveQuestionSkeleton(relation, group_by, group_values));
  uq.agg = agg;
  uq.dir = dir;
  const Schema& schema = *relation->schema();

  if (agg == AggFunc::kCount) {
    if (!agg_attr.empty() && agg_attr != "*") {
      return Status::InvalidArgument("count over a specific attribute is not supported; use '*'");
    }
    uq.agg_attr = AggregateSpec::kCountStar;
  } else {
    CAPE_ASSIGN_OR_RETURN(uq.agg_attr, schema.GetFieldIndexChecked(agg_attr));
    if (uq.group_attrs.Contains(uq.agg_attr)) {
      return Status::InvalidArgument("aggregate attribute '" + agg_attr +
                                     "' may not be a group-by attribute");
    }
    // Questions compare aggregate magnitudes (dev, norm, score), so every
    // aggregate — including min/max — must be over a numeric attribute.
    if (!IsNumericType(schema.field(uq.agg_attr).type)) {
      return Status::InvalidArgument(
          std::string(AggFuncToString(agg)) + "('" + agg_attr +
          "') requires a numeric attribute, got " +
          DataTypeToString(schema.field(uq.agg_attr).type));
    }
  }

  // Verify t ∈ Q(R) and fill in t[agg(A)] — one fused σ→γ pass computing
  // the membership count and the aggregate together, instead of
  // materializing the provenance just to read its row count.
  std::vector<std::pair<int, Value>> conditions;
  const std::vector<int> g = uq.group_attrs.ToIndices();
  for (size_t i = 0; i < g.size(); ++i) conditions.emplace_back(g[i], uq.group_values[i]);
  AggregateSpec count_spec = AggregateSpec::CountStar("n");
  AggregateSpec spec;
  spec.func = agg;
  spec.input_col = uq.agg_attr;
  spec.output_name = "agg";
  CAPE_ASSIGN_OR_RETURN(
      TablePtr aggregated,
      FilterGroupAggregate(*relation, conditions, std::vector<int>{}, {count_spec, spec}));
  if (aggregated->GetValue(0, 0).int64_value() == 0) {
    return Status::NotFound("no rows match the question tuple; t is not in Q(R)");
  }
  const Value result = aggregated->GetValue(0, 1);
  if (result.is_null()) {
    return Status::NotFound("aggregate value for the question tuple is NULL");
  }
  uq.result_value = result.AsDouble();
  return uq;
}

Result<UserQuestion> MakeMissingValueQuestion(TablePtr relation,
                                              const std::vector<std::string>& group_by,
                                              const std::vector<Value>& group_values) {
  CAPE_ASSIGN_OR_RETURN(UserQuestion uq,
                        ResolveQuestionSkeleton(relation, group_by, group_values));
  uq.agg = AggFunc::kCount;
  uq.agg_attr = AggregateSpec::kCountStar;
  uq.dir = Direction::kLow;
  uq.result_value = 0.0;

  // The combination must be absent... (existence probes count matches off
  // the block masks; no filtered table is ever materialized)
  std::vector<std::pair<int, Value>> conditions;
  const std::vector<int> g = uq.group_attrs.ToIndices();
  for (size_t i = 0; i < g.size(); ++i) conditions.emplace_back(g[i], uq.group_values[i]);
  CAPE_ASSIGN_OR_RETURN(int64_t combination_count, CountFilterMatches(*relation, conditions));
  if (combination_count > 0) {
    return Status::InvalidArgument(
        "the group exists in Q(R); use MakeUserQuestion for present tuples");
  }
  // ...but each individual value must occur somewhere in its column, so the
  // question is about a missing combination, not a value outside the domain.
  for (size_t i = 0; i < g.size(); ++i) {
    CAPE_ASSIGN_OR_RETURN(
        int64_t value_count, CountFilterMatches(*relation, {{g[i], uq.group_values[i]}}));
    if (value_count == 0) {
      return Status::NotFound("value '" + uq.group_values[i].ToString() +
                              "' never occurs in attribute '" +
                              relation->schema()->field(g[i]).name + "'");
    }
  }
  return uq;
}

}  // namespace cape
