#include "explain/question_finder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"
#include "relational/operators.h"

namespace cape {

Result<std::vector<CandidateQuestion>> FindCandidateQuestions(
    TablePtr table, const PatternSet& patterns, const QuestionFinderOptions& options) {
  if (table == nullptr) return Status::InvalidArgument("table must not be null");

  struct Hit {
    Pattern pattern;
    AttrSet attrs;   // F ∪ V
    Row values;      // t[F ∪ V], ascending
    double value;    // t[agg(A)]
    double deviation;
    double outlierness;
  };
  // Best hit per question tuple (a tuple may violate several patterns; keep
  // the strongest evidence).
  std::unordered_map<std::string, Hit> best;

  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    const std::vector<int> attrs = p.GroupAttrs().ToIndices();
    AggregateSpec spec;
    spec.func = p.agg;
    spec.input_col = p.agg_attr;
    spec.output_name = "agg";
    CAPE_ASSIGN_OR_RETURN(TablePtr data, GroupByAggregate(*table, attrs, {spec}));
    const int agg_col = static_cast<int>(attrs.size());
    // Miners only emit numeric aggregates, but patterns loaded from disk are
    // unchecked; a string aggregate (min/max over a string attr) has no
    // outlierness notion, so skip the pattern rather than CHECK-fail.
    if (!IsNumericType(data->column(agg_col).type())) continue;

    std::vector<int> f_positions;
    std::vector<int> v_positions;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (p.partition_attrs.Contains(attrs[i])) f_positions.push_back(static_cast<int>(i));
      else v_positions.push_back(static_cast<int>(i));
    }
    // String predictors contribute a 0.0 placeholder (constant model only).
    std::vector<bool> v_is_numeric;
    v_is_numeric.reserve(v_positions.size());
    for (int pos : v_positions) {
      v_is_numeric.push_back(IsNumericType(data->column(pos).type()));
    }

    std::string fragment_key;  // reused across rows; same bytes as EncodeRowKey
    for (int64_t row = 0; row < data->num_rows(); ++row) {
      if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(options.stop);
      if (data->column(agg_col).IsNull(row)) continue;
      fragment_key.clear();
      AppendTableRowKey(*data, row, f_positions, &fragment_key);
      const LocalPattern* local = gp.FindLocalByKey(fragment_key);
      if (local == nullptr) continue;

      std::vector<double> x;
      for (size_t v = 0; v < v_positions.size(); ++v) {
        x.push_back(v_is_numeric[v] ? data->column(v_positions[v]).GetNumeric(row) : 0.0);
      }
      const double predicted = local->model->Predict(x);
      const double value = data->column(agg_col).GetNumeric(row);
      const double deviation = value - predicted;
      const double outlierness = std::fabs(deviation) / (std::fabs(predicted) + 1.0);
      if (outlierness < options.min_outlierness) continue;

      Hit hit;
      hit.pattern = p;
      hit.attrs = p.GroupAttrs();
      hit.values.reserve(attrs.size());
      for (size_t i = 0; i < attrs.size(); ++i) {
        hit.values.push_back(data->GetValue(row, static_cast<int>(i)));
      }
      hit.value = value;
      hit.deviation = deviation;
      hit.outlierness = outlierness;

      const std::string key =
          std::to_string(hit.attrs.bits()) + "|" + EncodeRowKey(hit.values);
      auto it = best.find(key);
      if (it == best.end() || it->second.outlierness < outlierness) {
        best[key] = std::move(hit);
      }
    }
  }

  std::vector<Hit> hits;
  hits.reserve(best.size());
  for (auto& [key, hit] : best) hits.push_back(std::move(hit));
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.outlierness != b.outlierness) return a.outlierness > b.outlierness;
    return EncodeRowKey(a.values) < EncodeRowKey(b.values);  // deterministic ties
  });
  if (static_cast<int>(hits.size()) > options.top_k) {
    hits.resize(static_cast<size_t>(options.top_k));
  }

  std::vector<CandidateQuestion> out;
  const Schema& schema = *table->schema();
  for (Hit& hit : hits) {
    std::vector<std::string> group_by;
    for (int attr : hit.attrs.ToIndices()) group_by.push_back(schema.field(attr).name);
    const std::string agg_attr =
        hit.pattern.agg_attr == Pattern::kCountStar ? "*"
                                                    : schema.field(hit.pattern.agg_attr).name;
    CAPE_ASSIGN_OR_RETURN(
        UserQuestion question,
        MakeUserQuestion(table, group_by,
                         std::vector<Value>(hit.values.begin(), hit.values.end()),
                         hit.pattern.agg, agg_attr,
                         hit.deviation > 0 ? Direction::kHigh : Direction::kLow));
    CandidateQuestion cq;
    cq.question = std::move(question);
    cq.pattern = hit.pattern;
    cq.deviation = hit.deviation;
    cq.outlierness = hit.outlierness;
    out.push_back(std::move(cq));
  }
  return out;
}

}  // namespace cape
