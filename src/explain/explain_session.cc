#include "explain/explain_session.h"

#include "common/macros.h"
#include "explain/explainer_internal.h"

namespace cape {

ExplainSession::ExplainSession(std::shared_ptr<const PatternSet> patterns,
                               DistanceModel distance, ExplainConfig config)
    : patterns_(std::move(patterns)), distance_(std::move(distance)),
      config_(std::move(config)),
      state_(std::make_unique<explain_internal::SessionState>()) {}

// Out of line: SessionState is incomplete in the header (pimpl).
ExplainSession::~ExplainSession() = default;
ExplainSession::ExplainSession(ExplainSession&&) noexcept = default;
ExplainSession& ExplainSession::operator=(ExplainSession&&) noexcept = default;

int64_t ExplainSession::questions_answered() const { return state_->questions_answered; }

size_t ExplainSession::num_cached_agg_tables() const {
  return state_->agg_cache == nullptr ? 0 : state_->agg_cache->num_entries();
}

Result<ExplainResult> ExplainSession::Explain(const UserQuestion& question, bool optimized) {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("ExplainSession has no pattern set");
  }
  if (state_->relation == nullptr) {
    state_->relation = question.relation.get();
  } else if (state_->relation != question.relation.get()) {
    // The memoized γ tables are computed over the first question's
    // relation; serving a different table from them would be silently
    // wrong, so reject instead.
    return Status::InvalidArgument(
        "ExplainSession answers questions over one relation; open a new session "
        "for a different table");
  }
  CAPE_ASSIGN_OR_RETURN(ExplainResult result,
                        explain_internal::RunExplainWithState(question, *patterns_, distance_,
                                                              config_, optimized,
                                                              state_.get()));
  state_->questions_answered += 1;
  return result;
}

Result<std::vector<ExplainResult>> ExplainSession::ExplainBatch(
    const std::vector<UserQuestion>& questions, bool optimized) {
  std::vector<ExplainResult> out;
  out.reserve(questions.size());
  for (const UserQuestion& q : questions) {
    CAPE_ASSIGN_OR_RETURN(ExplainResult result, Explain(q, optimized));
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace cape
