#include "explain/explain_session.h"

#include "common/macros.h"

namespace cape {

Result<ExplainResult> ExplainSession::Explain(const UserQuestion& question, bool optimized) {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("ExplainSession has no pattern set");
  }
  if (state_.relation == nullptr) {
    state_.relation = question.relation.get();
  } else if (state_.relation != question.relation.get()) {
    // The memoized γ tables are computed over the first question's
    // relation; serving a different table from them would be silently
    // wrong, so reject instead.
    return Status::InvalidArgument(
        "ExplainSession answers questions over one relation; open a new session "
        "for a different table");
  }
  CAPE_ASSIGN_OR_RETURN(ExplainResult result,
                        explain_internal::RunExplainWithState(question, *patterns_, distance_,
                                                              config_, optimized, &state_));
  state_.questions_answered += 1;
  return result;
}

Result<std::vector<ExplainResult>> ExplainSession::ExplainBatch(
    const std::vector<UserQuestion>& questions, bool optimized) {
  std::vector<ExplainResult> out;
  out.reserve(questions.size());
  for (const UserQuestion& q : questions) {
    CAPE_ASSIGN_OR_RETURN(ExplainResult result, Explain(q, optimized));
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace cape
