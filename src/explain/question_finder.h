#ifndef CAPE_EXPLAIN_QUESTION_FINDER_H_
#define CAPE_EXPLAIN_QUESTION_FINDER_H_

#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "explain/user_question.h"
#include "pattern/pattern_set.h"

namespace cape {

/// A recommended user question: a tuple whose aggregate deviates strongly
/// from what a mined pattern predicts for it.
struct CandidateQuestion {
  UserQuestion question;
  /// The pattern whose local model flagged the tuple.
  Pattern pattern;
  /// dev_P(t) (Definition 8); the question direction is kHigh for positive
  /// deviation and kLow for negative.
  double deviation = 0.0;
  /// |deviation| normalized by the local model's prediction magnitude —
  /// the ranking key (a 2x dip at prediction 4 outranks a 5% dip at 400).
  double outlierness = 0.0;
};

struct QuestionFinderOptions {
  /// Number of questions to return.
  int top_k = 10;
  /// Minimum |deviation| / (|prediction|+1) for a tuple to be considered.
  double min_outlierness = 0.3;
  /// Optional cooperative stop: the per-pattern row scans check it at
  /// kStopCheckStride granularity and return its status when it fires.
  /// Not owned; must outlive the call. nullptr = never stop.
  StopToken* stop = nullptr;
};

/// Scans the data of every mined pattern for tuples that deviate strongly
/// from their local model and proposes ready-to-ask user questions, ranked
/// by outlierness. This inverts the CAPE pipeline's entry point: instead of
/// the analyst spotting an outlier manually (the paper assumes the question
/// is given), the mined patterns themselves surface the most question-worthy
/// answers — the interaction the visual-exploration tools in the paper's
/// related-work section provide.
///
/// At most one question (the strongest) is returned per (pattern-granularity
/// tuple), and each question is validated against `table` the same way
/// MakeUserQuestion validates analyst-supplied ones.
Result<std::vector<CandidateQuestion>> FindCandidateQuestions(
    TablePtr table, const PatternSet& patterns, const QuestionFinderOptions& options = {});

}  // namespace cape

#endif  // CAPE_EXPLAIN_QUESTION_FINDER_H_
