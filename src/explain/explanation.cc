#include "explain/explanation.h"

#include "common/string_util.h"

namespace cape {

std::string Explanation::ToString(const Schema& schema) const {
  std::string out = "(";
  const std::vector<int> attrs = tuple_attrs.ToIndices();
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.field(attrs[i]).name + "=" + tuple_values[i].ToString();
  }
  out += StringFormat(", agg=%g)  score=%.2f", agg_value, score);
  return out;
}

std::string RenderExplanationTable(const std::vector<Explanation>& explanations,
                                   const Schema& schema) {
  (void)schema;  // reserved for future per-attribute headers
  std::string out = StringFormat("%-4s | %-58s | %8s\n", "Rank", "Explanation", "score");
  out += std::string(78, '-') + "\n";
  for (size_t i = 0; i < explanations.size(); ++i) {
    const Explanation& e = explanations[i];
    std::string tuple = "(";
    const std::vector<int> attrs = e.tuple_attrs.ToIndices();
    for (size_t j = 0; j < attrs.size(); ++j) {
      if (j > 0) tuple += ", ";
      tuple += e.tuple_values[j].ToString();
    }
    tuple += ", " + StringFormat("%g", e.agg_value) + ")";
    out += StringFormat("%-4zu | %-58s | %8.2f\n", i + 1, tuple.c_str(), e.score);
  }
  return out;
}

}  // namespace cape
