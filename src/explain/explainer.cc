#include "explain/explainer.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"

namespace cape {

namespace {

/// Stable identity of a candidate explanation. The paper deduplicates per
/// (P', t'); we deduplicate per counterbalance tuple t' (attrs + values),
/// which additionally collapses the case where the same tuple is reachable
/// through different predictor splits (e.g. [author,venue]:year and
/// [author,year]:venue both yield (AX, ICDE, 2007)) — the displayed tables
/// in the paper contain each tuple once.
std::string CandidateKey(const Explanation& e) {
  std::string key = std::to_string(e.tuple_attrs.bits());
  key.push_back('|');
  key += EncodeRowKey(e.tuple_values);
  return key;
}

/// Holds the best-scoring explanation per (P', t') and exposes the k-th
/// best deduplicated score as the pruning floor.
class CandidatePool {
 public:
  explicit CandidatePool(int k) : k_(k) {}

  void Add(Explanation e) {
    std::string key = CandidateKey(e);
    auto it = best_.find(key);
    if (it == best_.end()) {
      scores_.insert(e.score);
      best_.emplace(std::move(key), std::move(e));
      return;
    }
    if (e.score <= it->second.score) return;
    scores_.erase(scores_.find(it->second.score));
    scores_.insert(e.score);
    it->second = std::move(e);
  }

  bool Full() const { return static_cast<int>(best_.size()) >= k_; }

  /// Lowest score still inside the top-k, or -inf when not yet full.
  double Threshold() const {
    if (!Full()) return -std::numeric_limits<double>::infinity();
    auto it = scores_.begin();
    std::advance(it, k_ - 1);
    return *it;
  }

  std::vector<Explanation> TopK() const {
    std::vector<Explanation> out;
    out.reserve(best_.size());
    for (const auto& [key, e] : best_) out.push_back(e);
    std::sort(out.begin(), out.end(), [](const Explanation& a, const Explanation& b) {
      if (a.score != b.score) return a.score > b.score;
      return CandidateKey(a) < CandidateKey(b);  // deterministic tie-break
    });
    if (static_cast<int>(out.size()) > k_) out.resize(static_cast<size_t>(k_));
    return out;
  }

 private:
  int k_;
  std::unordered_map<std::string, Explanation> best_;
  std::multiset<double, std::greater<double>> scores_;
};

/// Caches γ_{attrs, agg(A)}(R) tables shared by every (P, P') pair whose
/// refinement has the same attribute set.
class AggDataCache {
 public:
  explicit AggDataCache(const Table& relation) : relation_(relation) {}

  Result<TablePtr> Get(AttrSet attrs, AggFunc agg, int agg_attr, StopToken* stop) {
    const std::string key = std::to_string(attrs.bits()) + "|" +
                            std::to_string(static_cast<int>(agg)) + "|" +
                            std::to_string(agg_attr);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    AggregateSpec spec;
    spec.func = agg;
    spec.input_col = agg_attr;
    spec.output_name = "agg";
    CAPE_ASSIGN_OR_RETURN(TablePtr data,
                          GroupByAggregate(relation_, attrs.ToIndices(), {spec}, stop));
    cache_.emplace(key, data);
    return data;
  }

 private:
  const Table& relation_;
  std::unordered_map<std::string, TablePtr> cache_;
};

/// Relevant patterns (Definition 5) restricted to the question's aggregate:
/// F ∪ V ⊆ G and the pattern holds locally on t[F].
std::vector<const GlobalPattern*> FindRelevantPatterns(const UserQuestion& q,
                                                       const PatternSet& patterns) {
  std::vector<const GlobalPattern*> out;
  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    if (p.agg != q.agg || p.agg_attr != q.agg_attr) continue;
    if (!q.group_attrs.ContainsAll(p.GroupAttrs())) continue;
    if (gp.FindLocal(q.ProjectGroupValues(p.partition_attrs)) == nullptr) continue;
    out.push_back(&gp);
  }
  return out;
}

/// NORM of Definition 10: the question's own aggregate at the relevant
/// pattern's granularity, π_{agg(A)}(σ_{F=t[F] ∧ V=t[V]}(γ_{F∪V,agg(A)}(R))).
Result<double> ComputeNorm(const UserQuestion& q, const Pattern& p, StopToken* stop) {
  CAPE_FAILPOINT("explain.norm");
  std::vector<std::pair<int, Value>> conditions;
  const std::vector<int> gp_attrs = p.GroupAttrs().ToIndices();
  const Row gp_values = q.ProjectGroupValues(p.GroupAttrs());
  for (size_t i = 0; i < gp_attrs.size(); ++i) {
    conditions.emplace_back(gp_attrs[i], gp_values[i]);
  }
  CAPE_ASSIGN_OR_RETURN(TablePtr selected, FilterEquals(*q.relation, conditions, stop));
  AggregateSpec spec;
  spec.func = p.agg;
  spec.input_col = p.agg_attr;
  spec.output_name = "agg";
  CAPE_ASSIGN_OR_RETURN(TablePtr aggregated,
                        GroupByAggregate(*selected, std::vector<int>{}, {spec}, stop));
  const Value v = aggregated->GetValue(0, 0);
  return v.is_null() ? 0.0 : v.AsDouble();
}

/// dev↑(φ, P'): the largest counterbalancing deviation any tuple of P' can
/// have; <= 0 means no tuple can counterbalance the question's direction.
double DeviationUpperBound(const GlobalPattern& gp, Direction dir) {
  return dir == Direction::kLow ? gp.max_positive_dev : -gp.min_negative_dev;
}

double LocalDeviationUpperBound(const LocalPattern& local, Direction dir) {
  return dir == Direction::kLow ? local.max_positive_dev : -local.min_negative_dev;
}

/// Records an early stop: the result keeps the best explanations found so
/// far and reports which stage the deadline/cancellation interrupted.
void MarkPartial(ExplainResult* result, const StopToken& stop, const char* stage) {
  result->partial = true;
  result->stop_reason = stop.reason();
  result->stopped_stage = stage;
}

/// Scans all candidate tuples t' for one (P, P') pair, adding every valid
/// explanation (Definition 7) to the pool. When `prune_locals` is set,
/// fragments whose local deviation bound cannot beat the pool threshold are
/// skipped (the "more accurate bound" of Section 3.5).
Status EvaluatePair(const UserQuestion& q, const GlobalPattern& relevant,
                    const GlobalPattern& refinement, double norm,
                    const DistanceModel& distance_model, const ExplainConfig& config,
                    AggDataCache* cache, bool prune_locals, CandidatePool* pool,
                    ExplainProfile* profile, StopToken* stop) {
  CAPE_FAILPOINT("explain.refine");
  const Pattern& p = relevant.pattern;
  const Pattern& pp = refinement.pattern;
  const AttrSet attrs = pp.GroupAttrs();  // F' ∪ V
  CAPE_ASSIGN_OR_RETURN(TablePtr data, cache->Get(attrs, pp.agg, pp.agg_attr, stop));

  const std::vector<int> attr_list = attrs.ToIndices();
  const int agg_col = static_cast<int>(attr_list.size());
  std::vector<int> f_positions;        // P.F inside attr_list
  std::vector<int> f_prime_positions;  // P'.F' inside attr_list
  std::vector<int> v_positions;        // V inside attr_list
  for (size_t i = 0; i < attr_list.size(); ++i) {
    if (p.partition_attrs.Contains(attr_list[i])) f_positions.push_back(static_cast<int>(i));
    if (pp.partition_attrs.Contains(attr_list[i])) {
      f_prime_positions.push_back(static_cast<int>(i));
    }
    if (pp.predictor_attrs.Contains(attr_list[i])) v_positions.push_back(static_cast<int>(i));
  }
  const Row t_f = q.ProjectGroupValues(p.partition_attrs);
  const bool same_schema = attrs == q.group_attrs;
  const double isLow = q.dir == Direction::kLow ? 1.0 : -1.0;
  const double norm_denominator = std::fabs(norm) + config.epsilon;
  const double distance_lb = distance_model.LowerBound(q.group_attrs, attrs);

  for (int64_t row = 0; row < data->num_rows(); ++row) {
    CAPE_RETURN_IF_STOPPED(stop);
    profile->num_tuples_checked += 1;
    // Condition (4): t'[F] = t[F].
    bool matches = true;
    for (size_t i = 0; i < f_positions.size(); ++i) {
      if (data->GetValue(row, f_positions[i]) != t_f[i]) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    // Condition (4): t' != t when over the same schema.
    if (same_schema) {
      bool equal = true;
      for (size_t i = 0; i < attr_list.size(); ++i) {
        if (data->GetValue(row, static_cast<int>(i)) != q.group_values[i]) {
          equal = false;
          break;
        }
      }
      if (equal) continue;
    }
    if (data->column(agg_col).IsNull(row)) continue;

    // Condition (3): P' holds locally on t'[F'].
    Row fragment;
    fragment.reserve(f_prime_positions.size());
    for (int pos : f_prime_positions) fragment.push_back(data->GetValue(row, pos));
    const LocalPattern* local = refinement.FindLocal(fragment);
    if (local == nullptr) continue;

    if (prune_locals && pool->Full()) {
      const double local_bound = LocalDeviationUpperBound(*local, q.dir) /
                                 ((distance_lb + config.epsilon) * norm_denominator);
      if (local_bound <= pool->Threshold()) continue;
    }

    // Condition (5): deviation in the opposite direction.
    std::vector<double> x;
    x.reserve(v_positions.size());
    for (int pos : v_positions) x.push_back(data->column(pos).GetNumeric(row));
    const double predicted = local->model->Predict(x);
    const double y = data->column(agg_col).GetNumeric(row);
    if (q.dir == Direction::kLow ? y <= predicted : y >= predicted) continue;

    Explanation e;
    e.relevant_pattern = p;
    e.refinement_pattern = pp;
    e.tuple_attrs = attrs;
    e.tuple_values.reserve(attr_list.size());
    for (size_t i = 0; i < attr_list.size(); ++i) {
      e.tuple_values.push_back(data->GetValue(row, static_cast<int>(i)));
    }
    e.agg_value = y;
    e.predicted = predicted;
    e.deviation = y - predicted;
    e.distance =
        distance_model.Distance(q.group_attrs, q.group_values, attrs, e.tuple_values);
    e.norm = norm;
    e.score = (e.deviation * isLow) / ((e.distance + config.epsilon) * norm_denominator);
    profile->num_candidates += 1;
    pool->Add(std::move(e));
  }
  return Status::OK();
}

/// EXPL-GEN-NAIVE (Algorithm 1).
class NaiveExplainer final : public ExplanationGenerator {
 public:
  std::string name() const override { return "EXPL-GEN-NAIVE"; }

  Result<ExplainResult> Explain(const UserQuestion& q, const PatternSet& patterns,
                                const DistanceModel& distance,
                                const ExplainConfig& config) override {
    ExplainResult result;
    Stopwatch total;
    StopToken stop = config.MakeStopToken();
    CandidatePool pool(config.top_k);
    AggDataCache cache(*q.relation);

    const auto relevant = FindRelevantPatterns(q, patterns);
    result.profile.num_relevant_patterns = static_cast<int64_t>(relevant.size());
    for (const GlobalPattern* p : relevant) {
      if (result.partial) break;
      auto norm_result = ComputeNorm(q, p->pattern, &stop);
      if (!norm_result.ok()) {
        if (norm_result.status().IsStop()) {
          MarkPartial(&result, stop, "norm");
          break;
        }
        return norm_result.status();
      }
      const double norm = norm_result.ValueOrDie();
      for (const GlobalPattern& pp : patterns.patterns()) {
        if (!pp.pattern.IsRefinementOf(p->pattern)) continue;
        result.profile.num_refinement_pairs += 1;
        Status st = EvaluatePair(q, *p, pp, norm, distance, config, &cache,
                                 /*prune_locals=*/false, &pool, &result.profile, &stop);
        if (st.IsStop()) {
          MarkPartial(&result, stop, "refine");
          break;
        }
        CAPE_RETURN_IF_ERROR(st);
      }
    }
    result.explanations = pool.TopK();
    result.profile.total_ns = total.ElapsedNanos();
    return result;
  }
};

/// EXPL-GEN-OPT (Section 3.5).
class OptimizedExplainer final : public ExplanationGenerator {
 public:
  std::string name() const override { return "EXPL-GEN-OPT"; }

  Result<ExplainResult> Explain(const UserQuestion& q, const PatternSet& patterns,
                                const DistanceModel& distance,
                                const ExplainConfig& config) override {
    ExplainResult result;
    Stopwatch total;
    StopToken stop = config.MakeStopToken();
    CandidatePool pool(config.top_k);
    AggDataCache cache(*q.relation);

    struct Pair {
      const GlobalPattern* relevant;
      const GlobalPattern* refinement;
      double norm;
      double bound;
    };
    std::vector<Pair> pairs;

    const auto relevant = FindRelevantPatterns(q, patterns);
    result.profile.num_relevant_patterns = static_cast<int64_t>(relevant.size());
    for (const GlobalPattern* p : relevant) {
      if (result.partial) break;
      auto norm_result = ComputeNorm(q, p->pattern, &stop);
      if (!norm_result.ok()) {
        if (norm_result.status().IsStop()) {
          MarkPartial(&result, stop, "norm");
          break;
        }
        return norm_result.status();
      }
      const double norm = norm_result.ValueOrDie();
      const double norm_denominator = std::fabs(norm) + config.epsilon;
      for (const GlobalPattern& pp : patterns.patterns()) {
        if (!pp.pattern.IsRefinementOf(p->pattern)) continue;
        result.profile.num_refinement_pairs += 1;
        const double dev_up = DeviationUpperBound(pp, q.dir);
        const double d_lb = distance.LowerBound(q.group_attrs, pp.pattern.GroupAttrs());
        const double bound =
            dev_up <= 0.0 ? 0.0 : dev_up / ((d_lb + config.epsilon) * norm_denominator);
        pairs.push_back(Pair{p, &pp, norm, bound});
      }
    }

    // Process in decreasing bound order; once the bound cannot beat the
    // current k-th best score, every remaining pair is pruned.
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.bound > b.bound; });
    for (size_t i = 0; i < pairs.size() && !result.partial; ++i) {
      const Pair& pair = pairs[i];
      if (config.prune_pairs && pool.Full() && pair.bound <= pool.Threshold()) {
        result.profile.num_pairs_pruned += static_cast<int64_t>(pairs.size() - i);
        break;
      }
      Status st = EvaluatePair(q, *pair.relevant, *pair.refinement, pair.norm, distance,
                               config, &cache, config.prune_locals, &pool,
                               &result.profile, &stop);
      if (st.IsStop()) {
        MarkPartial(&result, stop, "refine");
        break;
      }
      CAPE_RETURN_IF_ERROR(st);
    }
    result.explanations = pool.TopK();
    result.profile.total_ns = total.ElapsedNanos();
    return result;
  }
};

}  // namespace

std::unique_ptr<ExplanationGenerator> MakeNaiveExplainer() {
  return std::make_unique<NaiveExplainer>();
}

std::unique_ptr<ExplanationGenerator> MakeOptimizedExplainer() {
  return std::make_unique<OptimizedExplainer>();
}

}  // namespace cape
