#include "explain/explainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "explain/explainer_internal.h"
#include "relational/kernels.h"

namespace cape {

namespace {

using explain_internal::AggDataCache;
using explain_internal::SessionState;

/// Stable identity of a candidate explanation. The paper deduplicates per
/// (P', t'); we deduplicate per counterbalance tuple t' (attrs + values),
/// which additionally collapses the case where the same tuple is reachable
/// through different predictor splits (e.g. [author,venue]:year and
/// [author,year]:venue both yield (AX, ICDE, 2007)) — the displayed tables
/// in the paper contain each tuple once.
std::string CandidateKey(const Explanation& e) {
  std::string key = std::to_string(e.tuple_attrs.bits());
  key.push_back('|');
  key += EncodeRowKey(e.tuple_values);
  return key;
}

/// Deterministic identity of one candidate in the scoring stream: the
/// (P, P') pair's position in the deterministically-ordered pair list plus
/// the tuple's row inside that pair's aggregated data. When two candidates
/// for the same tuple tie on score, the lower rank wins — a rule that
/// depends only on the *set* of candidates scored, never on the order the
/// workers happened to score them, which is what keeps the retained
/// Explanation (and hence the rendered output) identical at any thread
/// count.
struct CandidateRank {
  int64_t pair = 0;
  int64_t row = 0;
};

bool RankLess(const CandidateRank& a, const CandidateRank& b) {
  if (a.pair != b.pair) return a.pair < b.pair;
  return a.row < b.row;
}

/// Holds the best-scoring explanation per counterbalance tuple and exposes
/// the k-th best deduplicated score as the pruning floor. Each scoring
/// worker owns one pool (no locks on the Add path); when a `floor` is
/// attached, every update that changes a full pool's threshold publishes it
/// to the shared monotone floor so other workers prune against it too.
class CandidatePool {
 public:
  CandidatePool(int k, SharedScoreFloor* floor) : k_(k), floor_(floor) {}

  void Add(Explanation e, CandidateRank rank) {
    std::string key = CandidateKey(e);
    auto it = best_.find(key);
    if (it == best_.end()) {
      scores_.insert(e.score);
      best_.emplace(std::move(key), Entry{std::move(e), rank});
      Publish();
      return;
    }
    Entry& held = it->second;
    if (e.score < held.explanation.score) return;
    if (e.score == held.explanation.score) {
      // Same tuple, same score, different (P, P') or row: deterministic
      // winner regardless of insertion order.
      if (RankLess(rank, held.rank)) held = Entry{std::move(e), rank};
      return;
    }
    scores_.erase(scores_.find(held.explanation.score));
    scores_.insert(e.score);
    held = Entry{std::move(e), rank};
    Publish();
  }

  /// Folds another pool's candidates into this one (used for the final
  /// merge; both pools must share the same k).
  void Merge(const CandidatePool& other) {
    for (const auto& [key, entry] : other.best_) Add(entry.explanation, entry.rank);
  }

  bool Full() const { return static_cast<int>(best_.size()) >= k_; }

  /// Lowest score still inside the top-k, or -inf when not yet full.
  double Threshold() const {
    if (!Full()) return -std::numeric_limits<double>::infinity();
    auto it = scores_.begin();
    std::advance(it, k_ - 1);
    return *it;
  }

  std::vector<Explanation> TopK() const {
    std::vector<Explanation> out;
    out.reserve(best_.size());
    for (const auto& [key, entry] : best_) out.push_back(entry.explanation);
    std::sort(out.begin(), out.end(), [](const Explanation& a, const Explanation& b) {
      if (a.score != b.score) return a.score > b.score;
      return CandidateKey(a) < CandidateKey(b);  // deterministic tie-break
    });
    if (static_cast<int>(out.size()) > k_) out.resize(static_cast<size_t>(k_));
    return out;
  }

 private:
  struct Entry {
    Explanation explanation;
    CandidateRank rank;
  };

  void Publish() {
    if (floor_ != nullptr && Full()) floor_->RaiseTo(Threshold());
  }

  int k_;
  SharedScoreFloor* floor_;
  std::unordered_map<std::string, Entry> best_;
  std::multiset<double, std::greater<double>> scores_;
};

/// Relevant patterns (Definition 5) restricted to the question's aggregate:
/// F ∪ V ⊆ G and the pattern holds locally on t[F].
std::vector<const GlobalPattern*> FindRelevantPatterns(const UserQuestion& q,
                                                       const PatternSet& patterns) {
  std::vector<const GlobalPattern*> out;
  for (const GlobalPattern& gp : patterns.patterns()) {
    const Pattern& p = gp.pattern;
    if (p.agg != q.agg || p.agg_attr != q.agg_attr) continue;
    if (!q.group_attrs.ContainsAll(p.GroupAttrs())) continue;
    if (gp.FindLocal(q.ProjectGroupValues(p.partition_attrs)) == nullptr) continue;
    out.push_back(&gp);
  }
  return out;
}

/// NORM of Definition 10: the question's own aggregate at the relevant
/// pattern's granularity, π_{agg(A)}(σ_{F=t[F] ∧ V=t[V]}(γ_{F∪V,agg(A)}(R))).
Result<double> ComputeNorm(const UserQuestion& q, const Pattern& p, StopToken* stop) {
  CAPE_FAILPOINT("explain.norm");
  std::vector<std::pair<int, Value>> conditions;
  const std::vector<int> gp_attrs = p.GroupAttrs().ToIndices();
  const Row gp_values = q.ProjectGroupValues(p.GroupAttrs());
  for (size_t i = 0; i < gp_attrs.size(); ++i) {
    conditions.emplace_back(gp_attrs[i], gp_values[i]);
  }
  AggregateSpec spec;
  spec.func = p.agg;
  spec.input_col = p.agg_attr;
  spec.output_name = "agg";
  // Fused σ→γ over the whole relation: one block scan, no filtered table.
  CAPE_ASSIGN_OR_RETURN(TablePtr aggregated,
                        FilterGroupAggregate(*q.relation, conditions,
                                             std::vector<int>{}, {spec}, stop));
  const Value v = aggregated->GetValue(0, 0);
  return v.is_null() ? 0.0 : v.AsDouble();
}

/// dev↑(φ, P'): the largest counterbalancing deviation any tuple of P' can
/// have; <= 0 means no tuple can counterbalance the question's direction.
double DeviationUpperBound(const GlobalPattern& gp, Direction dir) {
  return dir == Direction::kLow ? gp.max_positive_dev : -gp.min_negative_dev;
}

double LocalDeviationUpperBound(const LocalPattern& local, Direction dir) {
  return dir == Direction::kLow ? local.max_positive_dev : -local.min_negative_dev;
}

/// Records an early stop: the result keeps the best explanations found so
/// far and reports which stage the deadline/cancellation interrupted.
void MarkPartial(ExplainResult* result, StopReason reason, const char* stage) {
  result->partial = true;
  result->stop_reason = reason;
  result->stopped_stage = stage;
}

/// One (P, P') scoring unit. `bound` is score↑(φ, P, P') from Section 3.5
/// (0 for the naive generator, which never prunes); `rank` is the unit's
/// position in the deterministically-ordered pair list.
struct PairTask {
  const GlobalPattern* relevant = nullptr;
  const GlobalPattern* refinement = nullptr;
  double norm = 0.0;
  double bound = 0.0;
};

/// Scans all candidate tuples t' for one (P, P') pair, adding every valid
/// explanation (Definition 7) to the worker's pool. When `prune_locals` is
/// set, fragments whose local deviation bound cannot beat the shared score
/// floor are skipped (the "more accurate bound" of Section 3.5). The floor
/// comparison is strict: a fragment that could still *tie* the k-th best
/// score is always scanned, which is what makes the pruned set — and hence
/// the final top-k — independent of thread count and timing.
Status EvaluatePair(const UserQuestion& q, const GlobalPattern& relevant,
                    const GlobalPattern& refinement, double norm,
                    const DistanceModel& distance_model, const ExplainConfig& config,
                    AggDataCache* cache, bool prune_locals, int64_t pair_rank,
                    const SharedScoreFloor* floor, CandidatePool* pool,
                    ExplainProfile* profile, StopToken* stop) {
  CAPE_FAILPOINT("explain.refine");
  const Pattern& p = relevant.pattern;
  const Pattern& pp = refinement.pattern;
  const AttrSet attrs = pp.GroupAttrs();  // F' ∪ V
  CAPE_ASSIGN_OR_RETURN(TablePtr data, cache->Get(attrs, pp.agg, pp.agg_attr, stop));

  const std::vector<int> attr_list = attrs.ToIndices();
  const int agg_col = static_cast<int>(attr_list.size());
  std::vector<int> f_positions;        // P.F inside attr_list
  std::vector<int> f_prime_positions;  // P'.F' inside attr_list
  std::vector<int> v_positions;        // V inside attr_list
  for (size_t i = 0; i < attr_list.size(); ++i) {
    if (p.partition_attrs.Contains(attr_list[i])) f_positions.push_back(static_cast<int>(i));
    if (pp.partition_attrs.Contains(attr_list[i])) {
      f_prime_positions.push_back(static_cast<int>(i));
    }
    if (pp.predictor_attrs.Contains(attr_list[i])) v_positions.push_back(static_cast<int>(i));
  }
  const Row t_f = q.ProjectGroupValues(p.partition_attrs);
  const bool same_schema = attrs == q.group_attrs;
  const double isLow = q.dir == Direction::kLow ? 1.0 : -1.0;
  const double norm_denominator = std::fabs(norm) + config.epsilon;
  const double distance_lb = distance_model.LowerBound(q.group_attrs, attrs);

  // Condition (4) matchers, compiled once per (P, P') pair: string condition
  // values translate to dictionary codes here, so the per-row checks below
  // are integer compares instead of boxed Value comparisons.
  std::vector<std::pair<int, Value>> f_conditions;
  f_conditions.reserve(f_positions.size());
  for (size_t i = 0; i < f_positions.size(); ++i) {
    f_conditions.emplace_back(f_positions[i], t_f[i]);
  }
  const RowEqualityMatcher f_matcher(*data, f_conditions);
  if (f_matcher.never_matches()) return Status::OK();  // no tuple has t'[F] = t[F]

  std::vector<std::pair<int, Value>> t_conditions;
  if (same_schema) {
    t_conditions.reserve(attr_list.size());
    for (size_t i = 0; i < attr_list.size(); ++i) {
      t_conditions.emplace_back(static_cast<int>(i), q.group_values[i]);
    }
  }
  const RowEqualityMatcher t_matcher(*data, t_conditions);
  const bool check_same_tuple = same_schema && !t_matcher.never_matches();

  // Predictor columns feed the local model's X vector; non-numeric predictors
  // contribute a 0.0 placeholder (the constant model ignores X, and that is
  // the only model fitted over string predictors).
  std::vector<bool> v_is_numeric;
  v_is_numeric.reserve(v_positions.size());
  for (int pos : v_positions) {
    v_is_numeric.push_back(IsNumericType(data->column(pos).type()));
  }

  std::string fragment_key;  // reused across rows; same bytes as EncodeRowKey
  // Conditions (3) and (5) plus candidate emission for one row that already
  // passed condition (4)'s F-match. Shared verbatim by the block-at-a-time
  // scan and the legacy row scan, so both produce identical candidates.
  auto score_row = [&](int64_t row) {
    // Condition (4): t' != t when over the same schema.
    if (check_same_tuple && t_matcher.Matches(row)) return;
    if (data->column(agg_col).IsNull(row)) return;

    // Condition (3): P' holds locally on t'[F'].
    fragment_key.clear();
    AppendTableRowKey(*data, row, f_prime_positions, &fragment_key);
    const LocalPattern* local = refinement.FindLocalByKey(fragment_key);
    if (local == nullptr) return;

    if (prune_locals) {
      const double local_bound = LocalDeviationUpperBound(*local, q.dir) /
                                 ((distance_lb + config.epsilon) * norm_denominator);
      if (local_bound < floor->Get()) return;
    }

    // Condition (5): deviation in the opposite direction.
    std::vector<double> x;
    x.reserve(v_positions.size());
    for (size_t i = 0; i < v_positions.size(); ++i) {
      x.push_back(v_is_numeric[i] ? data->column(v_positions[i]).GetNumeric(row) : 0.0);
    }
    const double predicted = local->model->Predict(x);
    const double y = data->column(agg_col).GetNumeric(row);
    if (q.dir == Direction::kLow ? y <= predicted : y >= predicted) return;

    Explanation e;
    e.relevant_pattern = p;
    e.refinement_pattern = pp;
    e.tuple_attrs = attrs;
    e.tuple_values.reserve(attr_list.size());
    for (size_t i = 0; i < attr_list.size(); ++i) {
      e.tuple_values.push_back(data->GetValue(row, static_cast<int>(i)));
    }
    e.agg_value = y;
    e.predicted = predicted;
    e.deviation = y - predicted;
    e.distance =
        distance_model.Distance(q.group_attrs, q.group_values, attrs, e.tuple_values);
    e.norm = norm;
    e.score = (e.deviation * isLow) / ((e.distance + config.epsilon) * norm_denominator);
    profile->num_candidates += 1;
    pool->Add(std::move(e), CandidateRank{pair_rank, row});
  };

  if (VectorizedKernelsEnabled()) {
    // Condition (4)'s F-match evaluates block-at-a-time into a byte mask;
    // the scalar scoring above runs only on surviving rows. Candidate order
    // follows ascending rows either way, so ranks are unchanged.
    const BlockPredicate f_block(*data, f_conditions);
    if (f_block.never_matches()) return Status::OK();
    const int64_t n = data->num_rows();
    uint8_t mask[kKernelBlockSize];
    for (int64_t b = 0; b < n; b += kKernelBlockSize) {
      CAPE_RETURN_IF_STOPPED_BLOCK(stop);
      const int bn = static_cast<int>(std::min<int64_t>(kKernelBlockSize, n - b));
      profile->num_tuples_checked += bn;
      f_block.EvalBlock(b, bn, mask);
      for (int i = 0; i < bn; ++i) {
        if (mask[i] != 0) score_row(b + i);
      }
    }
    return Status::OK();
  }
  for (int64_t row = 0; row < data->num_rows(); ++row) {
    CAPE_RETURN_IF_STOPPED(stop);
    profile->num_tuples_checked += 1;
    // Condition (4): t'[F] = t[F].
    if (!f_matcher.Matches(row)) continue;
    score_row(row);
  }
  return Status::OK();
}

/// Shared implementation of both generators (Section 3). The relevant-
/// pattern search and NORM queries run inline; the (P, P') scoring units
/// are then partitioned across the shared ThreadPool — each worker scores
/// into its own CandidatePool against a shared monotone score floor, and
/// the per-worker pools are merged at the end. `optimized` enables the
/// Section 3.5 ordering and pruning (EXPL-GEN-OPT); the naive generator
/// scores every pair in enumeration order.
///
/// Determinism (DESIGN.md §9): the pair list and every per-candidate tie-
/// break are deterministic, the floor is monotone and only ever below the
/// true top-k threshold, and pruning is strict (`bound < floor`), so any
/// candidate that could enter — or tie into — the final top-k is scored by
/// every run. The merged top-k is therefore byte-identical at any thread
/// count.
Result<ExplainResult> RunExplain(const UserQuestion& q, const PatternSet& patterns,
                                 const DistanceModel& distance, const ExplainConfig& config,
                                 bool optimized, SessionState* state) {
  ExplainResult result;
  Stopwatch total;
  StopToken stop = config.MakeStopToken();
  // One-shot calls build the γ cache per request; a session keeps one alive
  // across its batch (the tables depend only on the relation).
  std::unique_ptr<AggDataCache> local_cache;
  AggDataCache* cache = nullptr;
  if (state != nullptr) {
    if (state->agg_cache == nullptr) {
      state->agg_cache = std::make_unique<AggDataCache>(*q.relation);
    }
    cache = state->agg_cache.get();
  } else {
    local_cache = std::make_unique<AggDataCache>(*q.relation);
    cache = local_cache.get();
  }
  const bool prune_pairs = optimized && config.prune_pairs;
  const bool prune_locals = optimized && config.prune_locals;

  // Refinement adjacency is question-independent; a session computes it
  // once. The per-pattern lists keep enumeration order, so the pair list
  // below is identical to the inline scan of the one-shot path.
  const std::vector<GlobalPattern>& all = patterns.patterns();
  if (state != nullptr && !state->adjacency_built) {
    state->refinements.assign(all.size(), {});
    for (size_t i = 0; i < all.size(); ++i) {
      for (size_t j = 0; j < all.size(); ++j) {
        if (all[j].pattern.IsRefinementOf(all[i].pattern)) {
          state->refinements[i].push_back(static_cast<int64_t>(j));
        }
      }
    }
    state->adjacency_built = true;
  }

  // Stage 1 (inline): relevant patterns, NORM per relevant pattern, and the
  // (P, P') pair list with Section 3.5 score upper bounds.
  std::vector<PairTask> pairs;
  const auto relevant = FindRelevantPatterns(q, patterns);
  result.profile.num_relevant_patterns = static_cast<int64_t>(relevant.size());
  for (const GlobalPattern* p : relevant) {
    auto norm_result = ComputeNorm(q, p->pattern, &stop);
    if (!norm_result.ok()) {
      if (norm_result.status().IsStop()) {
        MarkPartial(&result, stop.reason(), "norm");
        break;
      }
      return norm_result.status();
    }
    const double norm = norm_result.ValueOrDie();
    const double norm_denominator = std::fabs(norm) + config.epsilon;
    auto add_pair = [&](const GlobalPattern& pp) {
      result.profile.num_refinement_pairs += 1;
      double bound = 0.0;
      if (optimized) {
        const double dev_up = DeviationUpperBound(pp, q.dir);
        const double d_lb = distance.LowerBound(q.group_attrs, pp.pattern.GroupAttrs());
        bound = dev_up <= 0.0 ? 0.0 : dev_up / ((d_lb + config.epsilon) * norm_denominator);
      }
      pairs.push_back(PairTask{p, &pp, norm, bound});
    };
    if (state != nullptr) {
      const size_t pattern_idx = static_cast<size_t>(p - all.data());
      for (int64_t j : state->refinements[pattern_idx]) {
        add_pair(all[static_cast<size_t>(j)]);
      }
    } else {
      for (const GlobalPattern& pp : all) {
        if (!pp.pattern.IsRefinementOf(p->pattern)) continue;
        add_pair(pp);
      }
    }
  }
  // Decreasing bound order raises the floor as early as possible. The sort
  // is stable so equal bounds keep their deterministic enumeration order —
  // a pair's position is its candidates' tie-break rank.
  if (optimized) {
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const PairTask& a, const PairTask& b) { return a.bound > b.bound; });
  }

  // Stage 2 (parallel): partition the pairs across workers. A run already
  // stopped in stage 1 skips scoring entirely (matching the sequential
  // semantics: a "norm" stop reports no scored candidates).
  if (!result.partial && !pairs.empty()) {
    ThreadPool& pool_exec = ThreadPool::Global();
    ThreadPool::ParallelForOptions opts;
    opts.max_workers = std::max(config.num_threads, 1);
    opts.grain = 1;  // one (P, P') scan per claim — work units are coarse
    opts.stop = stop;
    const int workers = pool_exec.PlannedWorkers(static_cast<int64_t>(pairs.size()), opts);

    SharedScoreFloor floor;
    std::vector<CandidatePool> pools;
    pools.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) pools.emplace_back(config.top_k, &floor);
    std::vector<ExplainProfile> profiles(static_cast<size_t>(workers));

    Status scored = pool_exec.ParallelFor(
        static_cast<int64_t>(pairs.size()), opts,
        [&](int worker, int64_t begin, int64_t end, StopToken* worker_stop) -> Status {
          ExplainProfile& profile = profiles[static_cast<size_t>(worker)];
          ScopedTimer cpu(&profile.cpu_ns);
          for (int64_t i = begin; i < end; ++i) {
            const PairTask& pair = pairs[static_cast<size_t>(i)];
            if (prune_pairs && pair.bound < floor.Get()) {
              profile.num_pairs_pruned += 1;
              continue;
            }
            CAPE_RETURN_IF_ERROR(EvaluatePair(
                q, *pair.relevant, *pair.refinement, pair.norm, distance, config, cache,
                prune_locals, i, &floor, &pools[static_cast<size_t>(worker)], &profile,
                worker_stop));
          }
          return Status::OK();
        });
    if (!scored.ok()) {
      if (!scored.IsStop()) return scored;
      MarkPartial(&result, StopReasonFromStatus(scored), "refine");
    }

    CandidatePool merged(config.top_k, nullptr);
    for (const CandidatePool& pool : pools) merged.Merge(pool);
    result.explanations = merged.TopK();
    for (const ExplainProfile& profile : profiles) {
      result.profile.cpu_ns += profile.cpu_ns;
      result.profile.num_pairs_pruned += profile.num_pairs_pruned;
      result.profile.num_tuples_checked += profile.num_tuples_checked;
      result.profile.num_candidates += profile.num_candidates;
    }
  }

  result.profile.total_ns = total.ElapsedNanos();
  return result;
}

/// EXPL-GEN-NAIVE (Algorithm 1).
class NaiveExplainer final : public ExplanationGenerator {
 public:
  std::string name() const override { return "EXPL-GEN-NAIVE"; }

  Result<ExplainResult> Explain(const UserQuestion& q, const PatternSet& patterns,
                                const DistanceModel& distance,
                                const ExplainConfig& config) override {
    return RunExplain(q, patterns, distance, config, /*optimized=*/false,
                      /*state=*/nullptr);
  }
};

/// EXPL-GEN-OPT (Section 3.5).
class OptimizedExplainer final : public ExplanationGenerator {
 public:
  std::string name() const override { return "EXPL-GEN-OPT"; }

  Result<ExplainResult> Explain(const UserQuestion& q, const PatternSet& patterns,
                                const DistanceModel& distance,
                                const ExplainConfig& config) override {
    return RunExplain(q, patterns, distance, config, /*optimized=*/true,
                      /*state=*/nullptr);
  }
};

}  // namespace

namespace explain_internal {

Result<ExplainResult> RunExplainWithState(const UserQuestion& q, const PatternSet& patterns,
                                          const DistanceModel& distance,
                                          const ExplainConfig& config, bool optimized,
                                          SessionState* state) {
  return RunExplain(q, patterns, distance, config, optimized, state);
}

}  // namespace explain_internal

std::unique_ptr<ExplanationGenerator> MakeNaiveExplainer() {
  return std::make_unique<NaiveExplainer>();
}

std::unique_ptr<ExplanationGenerator> MakeOptimizedExplainer() {
  return std::make_unique<OptimizedExplainer>();
}

}  // namespace cape
