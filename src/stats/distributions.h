#ifndef CAPE_STATS_DISTRIBUTIONS_H_
#define CAPE_STATS_DISTRIBUTIONS_H_

namespace cape {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Series expansion for x < a+1, continued fraction otherwise (Numerical
/// Recipes style). Accuracy ~1e-12, sufficient for goodness-of-fit use.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// CDF of the chi-square distribution with `dof` degrees of freedom.
double ChiSquareCdf(double x, double dof);

/// Survival function (upper tail) of chi-square: the p-value of a Pearson
/// statistic `x` with `dof` degrees of freedom.
double ChiSquareSf(double x, double dof);

}  // namespace cape

#endif  // CAPE_STATS_DISTRIBUTIONS_H_
