#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace cape {

double Mean(const std::vector<double>& xs) {
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  return stats.mean();
}

double Variance(const std::vector<double>& xs) {
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  return stats.variance();
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace cape
