#ifndef CAPE_STATS_REGRESSION_H_
#define CAPE_STATS_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace cape {

/// Regression model types used by ARPs (Section 2.1): constant regression
/// (GoF = Pearson chi-square p-value) and linear regression (GoF = R²).
enum class ModelType : int { kConst = 0, kLinear = 1 };

const char* ModelTypeToString(ModelType type);

/// A fitted regression model g : X -> Y together with its goodness of fit.
///
/// GoF is normalized to [0,1] with GoF = 1 iff the model predicts every
/// training point exactly, matching the paper's requirement in Section 2.1.
class RegressionModel {
 public:
  virtual ~RegressionModel() = default;

  virtual ModelType type() const = 0;

  /// Predicted aggregate value at predictor point `x` (one entry per
  /// predictor variable; constant models ignore x).
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Goodness of fit in [0,1] computed on the training data.
  virtual double goodness_of_fit() const = 0;

  /// Number of training samples the model was fitted on.
  virtual size_t num_samples() const = 0;

  /// Human-readable form, e.g. "g(x) = 2.5" or "g(x) = 1.2*x1 + 3.4".
  virtual std::string ToString() const = 0;
};

/// g(x) = beta (the training mean). GoF is the p-value of the Pearson
/// chi-square statistic on mean-normalized observations,
/// sum(((y_i - beta)/beta)^2), with n-1 degrees of freedom (Section 2.1
/// cites Pearson 1900; normalization makes the measure scale-free — see
/// DESIGN.md). When the mean is exactly zero the normalization is undefined
/// and GoF falls back to 1/(1 + RMSE/(|beta|+1)); both variants equal 1 iff
/// the fit is exact.
class ConstantRegression final : public RegressionModel {
 public:
  /// Fits on the dependent values alone (predictors are irrelevant).
  static Result<std::unique_ptr<ConstantRegression>> Fit(const std::vector<double>& y);

  /// Reconstructs a fitted model from its parameters (pattern_io.h
  /// deserialization); not a fitting entry point.
  static std::unique_ptr<ConstantRegression> FromParams(double beta, double gof, size_t n) {
    return std::unique_ptr<ConstantRegression>(new ConstantRegression(beta, gof, n));
  }

  ModelType type() const override { return ModelType::kConst; }
  double Predict(const std::vector<double>& x) const override;
  double goodness_of_fit() const override { return gof_; }
  size_t num_samples() const override { return n_; }
  std::string ToString() const override;

  double beta() const { return beta_; }

 private:
  ConstantRegression(double beta, double gof, size_t n) : beta_(beta), gof_(gof), n_(n) {}

  double beta_;
  double gof_;
  size_t n_;
};

/// Ordinary least squares g(x) = b0 + b1*x1 + ... + bp*xp, fitted via the
/// normal equations (p is small: pattern predictor sets are tiny). GoF is
/// R² = 1 - SS_res/SS_tot clamped to [0,1]; when SS_tot = 0 (constant y)
/// R² is 1 for an exact fit and 0 otherwise.
class LinearRegression final : public RegressionModel {
 public:
  /// Fits on design matrix X (n rows, each with p predictor values) and
  /// response y (n values). Requires n >= 1, consistent row widths, and a
  /// non-singular normal system (degenerate systems are solved in the
  /// least-norm sense via ridge damping).
  static Result<std::unique_ptr<LinearRegression>> Fit(
      const std::vector<std::vector<double>>& X, const std::vector<double>& y);

  /// Reconstructs a fitted model from its parameters (pattern_io.h
  /// deserialization); coef[0] is the intercept. Not a fitting entry point.
  static std::unique_ptr<LinearRegression> FromParams(std::vector<double> coef, double gof,
                                                      size_t n) {
    return std::unique_ptr<LinearRegression>(
        new LinearRegression(std::move(coef), gof, n));
  }

  ModelType type() const override { return ModelType::kLinear; }
  double Predict(const std::vector<double>& x) const override;
  double goodness_of_fit() const override { return gof_; }
  size_t num_samples() const override { return n_; }
  std::string ToString() const override;

  /// coefficients()[0] is the intercept; [i] the slope of predictor i-1.
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  LinearRegression(std::vector<double> coef, double gof, size_t n)
      : coef_(std::move(coef)), gof_(gof), n_(n) {}

  std::vector<double> coef_;
  double gof_;
  size_t n_;
};

/// Fits a model of the requested type. For kConst, X may be empty.
Result<std::unique_ptr<RegressionModel>> FitRegression(
    ModelType type, const std::vector<std::vector<double>>& X,
    const std::vector<double>& y);

/// Mergeable sufficient statistics for the ARP model fits: raw moments
/// (n, Σx, Σy, Σx², Σy², Σxy) of one (x, y) stream. Moments of disjoint row
/// sets ADD, so append-only maintainers and the sampled miner's error
/// bounds can fold batches — or merge per-batch accumulators — without
/// revisiting rows, which a fitted RegressionModel cannot do.
///
/// The derived quantities are algebraic re-expressions of the batch
/// formulas used by ConstantRegression/LinearRegression::Fit (equal up to
/// floating-point rounding, NOT bit-identical — stats_incremental_test pins
/// the ulp bounds). Byte-identity-critical paths (PatternMaintainer's
/// refits) therefore re-run FitRegression on the materialized vectors and
/// use moments only for statistics and bounds.
struct RegressionMoments {
  int64_t n = 0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;

  void Add(double x, double y) {
    ++n;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }

  /// Folds `other` in, as if its stream had been appended to this one.
  /// Exactly associative and commutative up to floating-point rounding.
  void Merge(const RegressionMoments& other) {
    n += other.n;
    sx += other.sx;
    sy += other.sy;
    sxx += other.sxx;
    syy += other.syy;
    sxy += other.sxy;
  }

  /// Constant-model parameter: mean of y (0 when empty).
  double ConstBeta() const;

  /// Constant-model goodness of fit from moments alone, mirroring
  /// ConstantRegression::Fit's rules: 1.0 for n < 2 or zero y-variance; the
  /// chi-square p-value of sum(((y-beta)/beta)^2) = syy/beta^2 - n for
  /// beta > 0; the RMSE fallback otherwise. Clamped to [0, 1].
  double ConstGof() const;

  /// Single-predictor least-squares line y = intercept + slope*x from the
  /// closed-form moment solution. InvalidArgument when n == 0; a degenerate
  /// design (zero x-variance) yields slope 0 with the mean as intercept.
  struct Line {
    double intercept = 0.0;
    double slope = 0.0;
  };
  Result<Line> FitLine() const;
};

}  // namespace cape

#endif  // CAPE_STATS_REGRESSION_H_
