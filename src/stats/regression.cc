#include "stats/regression.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace cape {

namespace {

/// Solves the symmetric positive (semi-)definite system A x = b in place via
/// Gaussian elimination with partial pivoting. Near-singular pivots receive
/// a small ridge damping so degenerate designs (e.g. duplicate predictor
/// values) still produce a usable least-squares solution.
std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> A,
                                      std::vector<double> b) {
  const size_t n = b.size();
  constexpr double kRidge = 1e-9;
  for (size_t i = 0; i < n; ++i) A[i][i] += kRidge;

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(A[r][col]) > std::fabs(A[pivot][col])) pivot = r;
    }
    std::swap(A[col], A[pivot]);
    std::swap(b[col], b[pivot]);
    double diag = A[col][col];
    if (std::fabs(diag) < 1e-30) continue;  // fully degenerate direction -> 0 coef
    for (size_t r = col + 1; r < n; ++r) {
      double factor = A[r][col] / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) A[r][c] -= factor * A[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= A[i][c] * x[c];
    x[i] = std::fabs(A[i][i]) < 1e-30 ? 0.0 : sum / A[i][i];
  }
  return x;
}

}  // namespace

const char* ModelTypeToString(ModelType type) {
  switch (type) {
    case ModelType::kConst:
      return "Const";
    case ModelType::kLinear:
      return "Lin";
  }
  return "?";
}

Result<std::unique_ptr<ConstantRegression>> ConstantRegression::Fit(
    const std::vector<double>& y) {
  if (y.empty()) {
    return Status::InvalidArgument("constant regression requires at least one sample");
  }
  RunningStats stats;
  for (double v : y) stats.Add(v);
  const double beta = stats.mean();
  const size_t n = y.size();

  double gof;
  bool exact = true;
  for (double v : y) {
    if (v != beta) {
      exact = false;
      break;
    }
  }
  if (exact) {
    gof = 1.0;
  } else if (n < 2) {
    gof = 1.0;  // a single point is fitted exactly by its own mean
  } else if (beta > 0.0) {
    // Pearson chi-square statistic against the constant expectation
    // (Section 2.1). Correctly sized for count-like data (var ≈ mean): a
    // clean Poisson fragment gets stat ≈ dof and a healthy p-value, while a
    // dispersed fragment (e.g. per-author counts within a year) gets
    // stat >> dof and p ≈ 0 — which is what prunes spurious patterns.
    double stat = 0.0;
    for (double v : y) {
      double diff = v - beta;
      stat += diff * diff / beta;
    }
    gof = ChiSquareSf(stat, static_cast<double>(n - 1));
  } else {
    // Chi-square is undefined for non-positive expectations; RMSE fallback.
    double sse = 0.0;
    for (double v : y) {
      double diff = v - beta;
      sse += diff * diff;
    }
    double rmse = std::sqrt(sse / static_cast<double>(n));
    gof = 1.0 / (1.0 + rmse / (std::fabs(beta) + 1.0));
  }
  gof = std::clamp(gof, 0.0, 1.0);
  return std::unique_ptr<ConstantRegression>(new ConstantRegression(beta, gof, n));
}

double ConstantRegression::Predict(const std::vector<double>& /*x*/) const { return beta_; }

std::string ConstantRegression::ToString() const {
  return "g(x) = " + FormatDouble(beta_);
}

Result<std::unique_ptr<LinearRegression>> LinearRegression::Fit(
    const std::vector<std::vector<double>>& X, const std::vector<double>& y) {
  const size_t n = y.size();
  if (n == 0) {
    return Status::InvalidArgument("linear regression requires at least one sample");
  }
  if (X.size() != n) {
    return Status::InvalidArgument("design matrix has " + std::to_string(X.size()) +
                                   " rows, response has " + std::to_string(n));
  }
  const size_t p = X[0].size();
  for (const auto& row : X) {
    if (row.size() != p) {
      return Status::InvalidArgument("inconsistent design-matrix row widths");
    }
  }
  const size_t k = p + 1;  // intercept + slopes

  // Normal equations: (Z^T Z) beta = Z^T y with Z = [1 | X].
  std::vector<std::vector<double>> ZtZ(k, std::vector<double>(k, 0.0));
  std::vector<double> Zty(k, 0.0);
  std::vector<double> z(k);
  for (size_t i = 0; i < n; ++i) {
    z[0] = 1.0;
    for (size_t j = 0; j < p; ++j) z[j + 1] = X[i][j];
    for (size_t a = 0; a < k; ++a) {
      Zty[a] += z[a] * y[i];
      for (size_t b = a; b < k; ++b) ZtZ[a][b] += z[a] * z[b];
    }
  }
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < a; ++b) ZtZ[a][b] = ZtZ[b][a];
  }
  std::vector<double> coef = SolveLinearSystem(std::move(ZtZ), std::move(Zty));

  // R-squared on the training data.
  const double y_mean = Mean(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pred = coef[0];
    for (size_t j = 0; j < p; ++j) pred += coef[j + 1] * X[i][j];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  double gof;
  constexpr double kExactTol = 1e-18;
  if (ss_tot <= kExactTol) {
    gof = ss_res <= 1e-12 ? 1.0 : 0.0;
  } else {
    gof = 1.0 - ss_res / ss_tot;
  }
  // Ridge damping can leave a vanishing residual on exact fits; snap to 1.
  if (ss_res <= 1e-12 * std::max(1.0, ss_tot)) gof = 1.0;
  gof = std::clamp(gof, 0.0, 1.0);
  return std::unique_ptr<LinearRegression>(new LinearRegression(std::move(coef), gof, n));
}

double LinearRegression::Predict(const std::vector<double>& x) const {
  double pred = coef_[0];
  const size_t p = coef_.size() - 1;
  for (size_t j = 0; j < p && j < x.size(); ++j) pred += coef_[j + 1] * x[j];
  return pred;
}

std::string LinearRegression::ToString() const {
  std::string out = "g(x) = " + FormatDouble(coef_[0]);
  for (size_t j = 1; j < coef_.size(); ++j) {
    out += (coef_[j] < 0 ? " - " : " + ") + FormatDouble(std::fabs(coef_[j])) + "*x" +
           std::to_string(j);
  }
  return out;
}

double RegressionMoments::ConstBeta() const {
  return n == 0 ? 0.0 : sy / static_cast<double>(n);
}

double RegressionMoments::ConstGof() const {
  if (n < 2) return 1.0;
  const double beta = ConstBeta();
  const double nd = static_cast<double>(n);
  // SSE = Σ(y - beta)² = syy - n·beta² (since Σy = n·beta); rounding can
  // drive the algebraic form slightly negative on near-constant data.
  const double sse = std::max(0.0, syy - nd * beta * beta);
  double gof;
  if (sse == 0.0) {
    gof = 1.0;
  } else if (beta > 0.0) {
    gof = ChiSquareSf(sse / beta, nd - 1.0);
  } else {
    const double rmse = std::sqrt(sse / nd);
    gof = 1.0 / (1.0 + rmse / (std::fabs(beta) + 1.0));
  }
  return std::clamp(gof, 0.0, 1.0);
}

Result<RegressionMoments::Line> RegressionMoments::FitLine() const {
  if (n == 0) {
    return Status::InvalidArgument("line fit requires at least one sample");
  }
  const double nd = static_cast<double>(n);
  const double x_mean = sx / nd;
  const double y_mean = sy / nd;
  const double var_x = std::max(0.0, sxx - nd * x_mean * x_mean);
  Line line;
  if (var_x == 0.0) {
    line.intercept = y_mean;
    return line;
  }
  const double cov_xy = sxy - nd * x_mean * y_mean;
  line.slope = cov_xy / var_x;
  line.intercept = y_mean - line.slope * x_mean;
  return line;
}

Result<std::unique_ptr<RegressionModel>> FitRegression(
    ModelType type, const std::vector<std::vector<double>>& X,
    const std::vector<double>& y) {
  switch (type) {
    case ModelType::kConst: {
      auto fitted = ConstantRegression::Fit(y);
      if (!fitted.ok()) return fitted.status();
      return std::unique_ptr<RegressionModel>(std::move(fitted).ValueOrDie());
    }
    case ModelType::kLinear: {
      auto fitted = LinearRegression::Fit(X, y);
      if (!fitted.ok()) return fitted.status();
      return std::unique_ptr<RegressionModel>(std::move(fitted).ValueOrDie());
    }
  }
  return Status::InvalidArgument("unknown model type");
}

}  // namespace cape
