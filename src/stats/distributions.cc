#include "stats/distributions.h"

#include <cmath>
#include <limits>

namespace cape {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// ln Γ(a) for a > 0. std::lgamma writes the libc-global `signgam`, which
/// is a data race when regression fits run on pool workers; the reentrant
/// variant keeps the sign in a local.
double LogGamma(double a) {
#if defined(_GNU_SOURCE) || defined(__USE_MISC) || defined(__APPLE__) || \
    defined(__unix__)
  int sign = 0;
  return lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

/// P(a, x) by series expansion; converges quickly for x < a + 1.
double GammaPBySeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Q(a, x) by Lentz's continued fraction; converges quickly for x >= a + 1.
double GammaQByContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (a <= 0.0 || std::isnan(a) || std::isnan(x)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPBySeries(a, x);
  return 1.0 - GammaQByContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (a <= 0.0 || std::isnan(a) || std::isnan(x)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPBySeries(a, x);
  return GammaQByContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double dof) {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

}  // namespace cape
