#ifndef CAPE_STATS_DESCRIPTIVE_H_
#define CAPE_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace cape {

/// Single-pass numerically-stable accumulator (Welford) for mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  /// Folds another accumulator in (Chan et al.'s parallel Welford update),
  /// as if the two input streams had been concatenated. Associative and
  /// order-independent up to floating-point rounding; stats_incremental_test
  /// pins the ulp bounds against the batch formulas. Lets maintainers keep
  /// per-batch accumulators and combine them without revisiting the data.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const size_t n = n_ + other.n_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(n);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ = n;
  }

  size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n).
  double variance() const { return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_); }
  /// Sample variance (divide by n-1); 0 when n < 2.
  double sample_variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
/// Median (average of middle two for even n); 0 for empty input.
double Median(std::vector<double> xs);

}  // namespace cape

#endif  // CAPE_STATS_DESCRIPTIVE_H_
