#ifndef CAPE_COMMON_THREAD_POOL_H_
#define CAPE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"

namespace cape {

/// Fixed-size worker pool shared by the miners and the explanation
/// generator (DESIGN.md §9). Threads are started once and sleep on a
/// condition variable between bursts, so an idle pool costs nothing on the
/// hot path. All parallel work in the codebase goes through ParallelFor —
/// nothing constructs std::thread directly.
///
/// Concurrency model: ParallelFor partitions an index range into grain-sized
/// chunks that workers claim from a shared atomic counter (dynamic
/// scheduling — work units here have wildly uneven cost). The calling thread
/// always participates as worker 0, so `num_threads = 1` runs entirely
/// inline with no queueing or locking, and a request can never deadlock
/// waiting for a saturated pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Outstanding ParallelFor calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool threads (excluding participating callers).
  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// The process-wide pool. Sized for the hardware but never below 3
  /// threads, so that concurrency tests and sanitizer runs exercise real
  /// interleavings even on small machines. Created on first use.
  static ThreadPool& Global();

  struct ParallelForOptions {
    /// Upper bound on concurrent workers (including the caller). <= 0 means
    /// pool size + 1. The per-call bound is what lets one shared pool serve
    /// requests with different `num_threads` settings.
    int max_workers = 0;
    /// Indices claimed per counter increment. 1 for coarse work units
    /// (attribute sets, scoring pairs); larger for cheap per-index bodies.
    int64_t grain = 1;
    /// Cooperative-stop prototype. Each worker carries its own copy (the
    /// stride countdown is per-holder state; see StopToken) and checks it
    /// between chunks; the copy is also handed to the body for per-row
    /// checks.
    StopToken stop;
  };

  /// Enqueues one standalone task for any pool worker. Unlike ParallelFor
  /// the caller does not participate and does not block; tasks run in FIFO
  /// order as workers free up. The task must not throw (there is no caller
  /// to propagate to) and must not block forever on another Submit-ed task
  /// — the serving layer (src/server) uses cooperative deadlines to bound
  /// every task it submits.
  void Submit(std::function<void()> task) CAPE_EXCLUDES(mu_);

  /// Number of distinct worker ids ParallelFor(n, opts) will use; callers
  /// size per-worker state arrays with this.
  int PlannedWorkers(int64_t n, const ParallelForOptions& opts) const;

  /// Runs `body(worker, begin, end, stop)` over [0, n) in grain-sized
  /// chunks until the range is drained or a body reports failure.
  ///
  ///  - `worker` is a dense id in [0, PlannedWorkers(n, opts)); the same id
  ///    is never active on two threads at once, so per-worker accumulators
  ///    need no locks.
  ///  - A non-OK Status from any body stops all workers at their next chunk
  ///    boundary and becomes the return value. Real errors take precedence
  ///    over stop (deadline/cancellation) statuses when both occur.
  ///  - A worker whose own StopToken fires between chunks stops the run the
  ///    same way (the stop Status is returned).
  ///  - Exceptions escaping the body are captured and propagated as
  ///    Status::Internal — they must not tear down unrelated pool users.
  ///
  /// Returns OK only when every chunk completed. The call blocks until all
  /// participating workers have quiesced, which is what makes the
  /// per-worker state arrays safe to read afterwards.
  Status ParallelFor(int64_t n, const ParallelForOptions& opts,
                     const std::function<Status(int worker, int64_t begin, int64_t end,
                                                StopToken* stop)>& body);

 private:
  void Enqueue(std::function<void()> task) CAPE_EXCLUDES(mu_);
  void WorkerLoop() CAPE_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CAPE_GUARDED_BY(mu_);
  bool shutdown_ CAPE_GUARDED_BY(mu_) = false;
};

/// Monotone score floor shared by the scoring workers of one explain
/// request: the maximum over all per-worker top-k thresholds published so
/// far. Readers may observe a stale (lower) value — that only makes the
/// Section 3.5 pruning conservative, never wrong — and the floor itself
/// never decreases, which is what keeps the pruned set sound at any thread
/// count (DESIGN.md §9).
class SharedScoreFloor {
 public:
  double Get() const { return floor_.load(std::memory_order_relaxed); }

  /// Raises the floor to at least `candidate` (no-op when lower).
  void RaiseTo(double candidate) {
    double current = floor_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !floor_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> floor_{-std::numeric_limits<double>::infinity()};
};

}  // namespace cape

#endif  // CAPE_COMMON_THREAD_POOL_H_
