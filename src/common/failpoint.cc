#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <unordered_map>

#include "common/annotations.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/string_util.h"

namespace cape::failpoint {

namespace {

/// Every fault-injection site compiled into the library. Keep in sync with
/// the CAPE_FAILPOINT()/CAPE_FAILPOINT_FIRES() lines; failpoint_test
/// iterates this list and forces a fault at each site in turn.
constexpr const char* kSites[] = {
    "csv.open",         // ReadCsvFile: file open / slurp
    "csv.read_row",     // ReadCsvString: per-record parse loop
    "mining.group",     // miners: shared GroupByAggregate query
    "mining.cube.group",  // CUBE miner: cube materialization
    "mining.sort",      // miners: per-split sort query
    "fd.count_groups",  // FdDetector::CountGroups scan
    "explain.norm",     // explainer: NORM aggregation query
    "explain.refine",   // explainer: (P, P') drill-down scan
    "sql.execute",      // ExecuteSelect entry
    "pattern_io.save",  // SavePatternSet file write
    "pattern_io.load",  // LoadPatternSet file read
    "engine.cache_admit",         // Engine::MinePatterns: serving-cache insert (degrade)
    "pattern_cache.save_entry",   // PatternCache::SaveToDirectory per-entry write
    "pattern_cache.load_entry",   // PatternCache::LoadFromDirectory per-entry read (degrade)
    "pattern_cache.lookup_race",  // PatternCache::Lookup: simulated concurrent eviction (degrade)
    "storage.page_read",          // HeapFile::ReadPage: page IO / checksum verify
    "incremental.merge",          // PatternMaintainer::Absorb: commit barrier (degrade)
};

struct Spec {
  StatusCode code = StatusCode::kIOError;
  std::string message;
  int skip = 0;    // hits to let through before firing
  int count = -1;  // firings left; -1 = unlimited
  double probability = 1.0;  // chance an eligible hit fires
  uint64_t rng = 0;          // xorshift64* state; 0 = exact (no sampling)
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Spec> active CAPE_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

std::atomic<int>& active_count() {
  static std::atomic<int> count{0};
  return count;
}

bool IsKnownSite(const std::string& site) {
  for (const char* s : kSites) {
    if (site == s) return true;
  }
  return false;
}

StatusCode ParseKind(const std::string& kind) {
  if (kind == "internal") return StatusCode::kInternal;
  if (kind == "oom") return StatusCode::kInternal;
  return StatusCode::kIOError;  // "io" and anything else
}

/// Deterministic per-site uniform draw in [0, 1): xorshift64* seeded from
/// the site name, reset by each Activate. Chaos runs are therefore
/// reproducible — the same activation fires on the same hit sequence.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) * 0x1.0p-53;
}

uint64_t SeedFor(const std::string& site) {
  Fnv64 h;
  h.Update(site.data(), site.size());
  // Never zero (xorshift fixed point).
  return h.digest() | 1ull;
}

/// Parses CAPE_FAILPOINTS="site=kind[@skip][%p];site2=kind" once at startup.
void LoadFromEnv() {
  const char* env = std::getenv("CAPE_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& entry : SplitString(env, ';')) {
    Status st = ActivateFromSpec(entry);
    if (!st.ok()) {
      CAPE_LOG(Warning) << "ignoring CAPE_FAILPOINTS entry '" << entry
                        << "': " << st.ToString();
    }
  }
}

}  // namespace

std::vector<std::string> AllSites() {
  return std::vector<std::string>(std::begin(kSites), std::end(kSites));
}

bool AnyActive() {
  static const bool env_once = [] {
    LoadFromEnv();
    return true;
  }();
  (void)env_once;
  return active_count().load(std::memory_order_relaxed) > 0;
}

Status Activate(const std::string& site, StatusCode code, std::string message, int skip,
                int count, double probability) {
  if (!IsKnownSite(site)) {
    return Status::InvalidArgument("unknown failpoint site '" + site + "'");
  }
  if (code == StatusCode::kOk) {
    return Status::InvalidArgument("failpoint must be armed with an error code");
  }
  if (!(probability > 0.0) || probability > 1.0) {
    return Status::InvalidArgument("failpoint probability must be in (0, 1]");
  }
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto [it, inserted] = r.active.emplace(site, Spec{});
  it->second = Spec{code,  std::move(message), skip, count, probability,
                    probability < 1.0 ? SeedFor(site) : 0};
  if (inserted) active_count().fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ActivateFromSpec(const std::string& entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("failpoint spec '" + entry +
                                   "' is not of the form site=kind[@skip][%p]");
  }
  const std::string site = entry.substr(0, eq);
  std::string kind = entry.substr(eq + 1);
  double probability = 1.0;
  const size_t pct = kind.find('%');
  if (pct != std::string::npos) {
    auto parsed = ParseDouble(kind.substr(pct + 1));
    if (!parsed.ok()) {
      return Status::InvalidArgument("failpoint spec '" + entry +
                                     "' has an unparseable probability");
    }
    probability = *parsed;
    kind = kind.substr(0, pct);
  }
  int skip = 0;
  const size_t at = kind.find('@');
  if (at != std::string::npos) {
    auto parsed = ParseInt64(kind.substr(at + 1));
    if (!parsed.ok() || *parsed < 0) {
      return Status::InvalidArgument("failpoint spec '" + entry +
                                     "' has an unparseable @skip");
    }
    skip = static_cast<int>(*parsed);
    kind = kind.substr(0, at);
  }
  return Activate(site, ParseKind(kind),
                  "injected fault (CAPE_FAILPOINTS) at " + site, skip,
                  /*count=*/-1, probability);
}

void Deactivate(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (r.active.erase(site) > 0) {
    active_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeactivateAll() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  active_count().fetch_sub(static_cast<int>(r.active.size()),
                           std::memory_order_relaxed);
  r.active.clear();
}

Status Trigger(const char* site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.active.find(site);
  if (it == r.active.end()) return Status::OK();
  Spec& spec = it->second;
  if (spec.skip > 0) {
    --spec.skip;
    return Status::OK();
  }
  if (spec.count == 0) return Status::OK();
  // Probabilistic sites sample an eligible hit; a losing draw passes through
  // without consuming `count`, so chaos activations keep firing at the armed
  // rate for the life of the run.
  if (spec.rng != 0 && NextUniform(&spec.rng) >= spec.probability) {
    return Status::OK();
  }
  if (spec.count > 0) --spec.count;
  return Status(spec.code, spec.message.empty()
                               ? "injected fault at " + std::string(site)
                               : spec.message);
}

}  // namespace cape::failpoint
