#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <unordered_map>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/string_util.h"

namespace cape::failpoint {

namespace {

/// Every fault-injection site compiled into the library. Keep in sync with
/// the CAPE_FAILPOINT() lines; failpoint_test iterates this list and forces
/// a fault at each site in turn.
constexpr const char* kSites[] = {
    "csv.open",         // ReadCsvFile: file open / slurp
    "csv.read_row",     // ReadCsvString: per-record parse loop
    "mining.group",     // miners: shared GroupByAggregate query
    "mining.cube.group",  // CUBE miner: cube materialization
    "mining.sort",      // miners: per-split sort query
    "fd.count_groups",  // FdDetector::CountGroups scan
    "explain.norm",     // explainer: NORM aggregation query
    "explain.refine",   // explainer: (P, P') drill-down scan
    "sql.execute",      // ExecuteSelect entry
    "pattern_io.save",  // SavePatternSet file write
    "pattern_io.load",  // LoadPatternSet file read
};

struct Spec {
  StatusCode code = StatusCode::kIOError;
  std::string message;
  int skip = 0;    // hits to let through before firing
  int count = -1;  // firings left; -1 = unlimited
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Spec> active CAPE_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

std::atomic<int>& active_count() {
  static std::atomic<int> count{0};
  return count;
}

bool IsKnownSite(const std::string& site) {
  for (const char* s : kSites) {
    if (site == s) return true;
  }
  return false;
}

StatusCode ParseKind(const std::string& kind) {
  if (kind == "internal") return StatusCode::kInternal;
  if (kind == "oom") return StatusCode::kInternal;
  return StatusCode::kIOError;  // "io" and anything else
}

/// Parses CAPE_FAILPOINTS="site=kind[@skip];site2=kind" once at startup.
void LoadFromEnv() {
  const char* env = std::getenv("CAPE_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& entry : SplitString(env, ';')) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    const std::string site = entry.substr(0, eq);
    std::string kind = entry.substr(eq + 1);
    int skip = 0;
    const size_t at = kind.find('@');
    if (at != std::string::npos) {
      auto parsed = ParseInt64(kind.substr(at + 1));
      if (parsed.ok()) skip = static_cast<int>(*parsed);
      kind = kind.substr(0, at);
    }
    Status st = Activate(site, ParseKind(kind),
                         "injected fault (CAPE_FAILPOINTS) at " + site, skip);
    if (!st.ok()) {
      CAPE_LOG(Warning) << "ignoring CAPE_FAILPOINTS entry '" << entry
                        << "': " << st.ToString();
    }
  }
}

}  // namespace

std::vector<std::string> AllSites() {
  return std::vector<std::string>(std::begin(kSites), std::end(kSites));
}

bool AnyActive() {
  static const bool env_once = [] {
    LoadFromEnv();
    return true;
  }();
  (void)env_once;
  return active_count().load(std::memory_order_relaxed) > 0;
}

Status Activate(const std::string& site, StatusCode code, std::string message, int skip,
                int count) {
  if (!IsKnownSite(site)) {
    return Status::InvalidArgument("unknown failpoint site '" + site + "'");
  }
  if (code == StatusCode::kOk) {
    return Status::InvalidArgument("failpoint must be armed with an error code");
  }
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto [it, inserted] = r.active.emplace(site, Spec{});
  it->second = Spec{code, std::move(message), skip, count};
  if (inserted) active_count().fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Deactivate(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  if (r.active.erase(site) > 0) {
    active_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeactivateAll() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  active_count().fetch_sub(static_cast<int>(r.active.size()),
                           std::memory_order_relaxed);
  r.active.clear();
}

Status Trigger(const char* site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.active.find(site);
  if (it == r.active.end()) return Status::OK();
  Spec& spec = it->second;
  if (spec.skip > 0) {
    --spec.skip;
    return Status::OK();
  }
  if (spec.count == 0) return Status::OK();
  if (spec.count > 0) --spec.count;
  return Status(spec.code, spec.message.empty()
                               ? "injected fault at " + std::string(site)
                               : spec.message);
}

}  // namespace cape::failpoint
