#ifndef CAPE_COMMON_RESULT_H_
#define CAPE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cape {

/// Result<T> holds either a value of type T or an error Status.
///
/// It is the return type of fallible functions that produce a value, in the
/// style of arrow::Result. Use ValueOrDie()/operator* after checking ok(),
/// or the CAPE_ASSIGN_OR_RETURN macro (macros.h) to propagate errors.
///
/// [[nodiscard]] like Status: an ignored Result is an ignored error. Use
/// CAPE_IGNORE_STATUS (status.h) for the rare documented discard.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit so `return value;` works).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a Result holding an error status. `status.ok()` is a
  /// programming error and is normalized to an Internal error.
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the contained status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  /// Value access. Undefined when !ok(); asserts in debug builds.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alternative` when this Result holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(data_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> data_;
};

}  // namespace cape

#endif  // CAPE_COMMON_RESULT_H_
