#ifndef CAPE_COMMON_ANNOTATIONS_H_
#define CAPE_COMMON_ANNOTATIONS_H_

/// Thread-safety annotations (Clang Thread Safety Analysis).
///
/// These macros expand to Clang's capability attributes when compiling with
/// Clang and to nothing elsewhere, so annotated code builds unchanged under
/// GCC. With `-DCAPE_ANALYZE=ON` (CMakeLists.txt) the tree is compiled with
/// `-Wthread-safety -Werror`, turning lock-discipline violations — reading a
/// CAPE_GUARDED_BY field without its mutex, releasing a lock twice, calling a
/// CAPE_REQUIRES function unlocked — into compile errors on every build
/// rather than TSan findings on lucky schedules (DESIGN.md §12).
///
/// Usage, by example:
///
///   class Registry {
///    public:
///     void Add(std::string name) {
///       MutexLock lock(mu_);
///       names_.push_back(std::move(name));
///     }
///    private:
///     Mutex mu_;
///     std::vector<std::string> names_ CAPE_GUARDED_BY(mu_);
///   };
///
/// Private helpers that assume the lock is already held take
/// CAPE_REQUIRES(mu_) instead of re-locking; the analysis then checks every
/// caller. Annotate new concurrent code at the field level — a GUARDED_BY on
/// each shared field is what gives the analysis (and the next reader) the
/// lock protocol.

#if defined(__clang__)
#define CAPE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CAPE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPE_CAPABILITY(x) CAPE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define CAPE_SCOPED_CAPABILITY CAPE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define CAPE_GUARDED_BY(x) CAPE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected by the
/// given capability (the pointer itself is not).
#define CAPE_PT_GUARDED_BY(x) CAPE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares a required lock-acquisition order between two mutexes.
#define CAPE_ACQUIRED_BEFORE(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define CAPE_ACQUIRED_AFTER(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the given capabilities.
#define CAPE_REQUIRES(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define CAPE_REQUIRES_SHARED(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capabilities.
#define CAPE_ACQUIRE(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CAPE_ACQUIRE_SHARED(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define CAPE_RELEASE(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define CAPE_RELEASE_SHARED(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability when it returns `ret`.
#define CAPE_TRY_ACQUIRE(...) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the given capabilities
/// (deadlock prevention for self-locking public APIs).
#define CAPE_EXCLUDES(...) CAPE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define CAPE_ASSERT_CAPABILITY(x) \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the given capability.
#define CAPE_RETURN_CAPABILITY(x) CAPE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a justification comment (DESIGN.md §12).
#define CAPE_NO_THREAD_SAFETY_ANALYSIS \
  CAPE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CAPE_COMMON_ANNOTATIONS_H_
