#include "common/cancellation.h"

namespace cape {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadlineExceeded:
      return "deadline exceeded";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

Status StopToken::ToStatus() const {
  switch (reason_) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("request deadline exceeded");
    case StopReason::kCancelled:
      return Status::Cancelled("request cancelled");
  }
  return Status::Internal("unreachable stop reason");
}

}  // namespace cape
