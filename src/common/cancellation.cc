#include "common/cancellation.h"

namespace cape {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadlineExceeded:
      return "deadline exceeded";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

StopReason StopReasonFromStatus(const Status& status) {
  if (status.IsDeadlineExceeded()) return StopReason::kDeadlineExceeded;
  if (status.IsCancelled()) return StopReason::kCancelled;
  return StopReason::kNone;
}

Status StopToken::ToStatus() const {
  switch (reason_) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("request deadline exceeded");
    case StopReason::kCancelled:
      return Status::Cancelled("request cancelled");
  }
  return Status::Internal("unreachable stop reason");
}

}  // namespace cape
