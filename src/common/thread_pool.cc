#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

namespace cape {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(3, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) { Enqueue(std::move(task)); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::PlannedWorkers(int64_t n, const ParallelForOptions& opts) const {
  if (n <= 0) return 0;
  const int64_t grain = std::max<int64_t>(opts.grain, 1);
  const int64_t chunks = (n + grain - 1) / grain;
  int64_t workers = opts.max_workers > 0 ? opts.max_workers : num_threads() + 1;
  return static_cast<int>(std::max<int64_t>(1, std::min(workers, chunks)));
}

namespace {

/// Shared state of one ParallelFor call. Lives on the caller's stack; the
/// caller blocks until `remaining` hits zero, so worker references stay
/// valid.
struct ParallelForState {
  std::atomic<int64_t> next{0};
  std::atomic<bool> stop_all{false};
  Mutex mu;
  CondVar done_cv;
  int remaining CAPE_GUARDED_BY(mu) = 0;
  Status first_error CAPE_GUARDED_BY(mu);  // non-stop failure — takes precedence
  Status first_stop CAPE_GUARDED_BY(mu);   // deadline/cancellation
};

}  // namespace

Status ThreadPool::ParallelFor(
    int64_t n, const ParallelForOptions& opts,
    const std::function<Status(int worker, int64_t begin, int64_t end, StopToken* stop)>&
        body) {
  if (n <= 0) return Status::OK();
  const int64_t grain = std::max<int64_t>(opts.grain, 1);
  const int workers = PlannedWorkers(n, opts);

  ParallelForState state;
  {
    MutexLock lock(state.mu);
    state.remaining = workers;
  }

  auto run_worker = [&state, &body, &opts, n, grain](int worker) {
    StopToken stop = opts.stop;  // per-worker copy (per-holder stride state)
    Status failure;
    while (!state.stop_all.load(std::memory_order_relaxed)) {
      if (stop.ShouldStopNow()) {
        failure = stop.ToStatus();
        break;
      }
      const int64_t begin = state.next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const int64_t end = std::min(n, begin + grain);
      Status st;
      try {
        st = body(worker, begin, end, &stop);
      } catch (const std::exception& e) {
        st = Status::Internal(std::string("uncaught exception in parallel worker: ") +
                              e.what());
      } catch (...) {
        st = Status::Internal("uncaught non-standard exception in parallel worker");
      }
      if (!st.ok()) {
        failure = std::move(st);
        break;
      }
    }
    MutexLock lock(state.mu);
    if (!failure.ok()) {
      state.stop_all.store(true, std::memory_order_relaxed);
      if (failure.IsStop()) {
        if (state.first_stop.ok()) state.first_stop = std::move(failure);
      } else if (state.first_error.ok()) {
        state.first_error = std::move(failure);
      }
    }
    if (--state.remaining == 0) state.done_cv.NotifyAll();
  };

  // Workers 1..W-1 go to the pool; the caller runs worker 0 inline. With a
  // single planned worker this degenerates to a plain loop on the calling
  // thread — no queue, no locks beyond the final bookkeeping.
  for (int w = 1; w < workers; ++w) {
    Enqueue([&run_worker, w] { run_worker(w); });
  }
  run_worker(0);
  {
    MutexLock lock(state.mu);
    while (state.remaining != 0) state.done_cv.Wait(state.mu);
    if (!state.first_error.ok()) return state.first_error;
    if (!state.first_stop.ok()) return state.first_stop;
  }
  return Status::OK();
}

}  // namespace cape
