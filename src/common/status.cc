#include "common/status.h"

namespace cape {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cape
