#ifndef CAPE_COMMON_STOPWATCH_H_
#define CAPE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cape {

/// Monotonic wall-clock stopwatch used for benchmark harnesses and for the
/// per-subtask mining profile (Figure 4).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's duration to an external nanosecond accumulator.
/// Used to attribute mining time to subtasks (regression / query / other).
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* accumulator_ns) : accumulator_ns_(accumulator_ns) {}
  ~ScopedTimer() {
    if (accumulator_ns_ != nullptr) *accumulator_ns_ += watch_.ElapsedNanos();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* accumulator_ns_;
  Stopwatch watch_;
};

}  // namespace cape

#endif  // CAPE_COMMON_STOPWATCH_H_
