#ifndef CAPE_COMMON_STRING_UTIL_H_
#define CAPE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cape {

/// Splits `input` on `delim`, keeping empty fields (like SQL CSV semantics).
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins the string representations of `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lower-casing (domain values in CAPE datasets are ASCII).
std::string ToLowerAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict parse of a whole string as int64 / double. Errors when the string
/// is empty, has trailing junk, or overflows.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Renders a double with enough precision for round-tripping while dropping
/// the noisy trailing zeros of std::to_string.
std::string FormatDouble(double value);

/// printf-style formatting into std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cape

#endif  // CAPE_COMMON_STRING_UTIL_H_
