#ifndef CAPE_COMMON_MUTEX_H_
#define CAPE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace cape {

/// Annotated synchronization primitives.
///
/// All locking in CAPE goes through these wrappers instead of raw
/// std::mutex/std::lock_guard — tools/lint.py enforces that outside this
/// file no raw primitive appears in src/. The wrappers carry the Clang
/// thread-safety capability attributes (annotations.h), so a CAPE_GUARDED_BY
/// field can only be touched while its Mutex is provably held; the
/// `CAPE_ANALYZE=ON` build turns violations into compile errors.
///
/// The wrappers are zero-cost: header-only forwarding onto std::mutex /
/// std::condition_variable, so the mutex-wrapper migration cannot perturb
/// timing or output (determinism_test / random_equivalence_test prove
/// byte-identical results at 1/2/4/8 threads).
class CAPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CAPE_ACQUIRE() { mu_.lock(); }
  void Unlock() CAPE_RELEASE() { mu_.unlock(); }
  bool TryLock() CAPE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait needs the underlying handle
  std::mutex mu_;
};

/// RAII lock for Mutex (the only way CAPE code should hold one). Scoped
/// acquisition means early returns — including the ones CAPE_RETURN_IF_ERROR
/// and CAPE_FAILPOINT expand to — always release, and the analysis knows it.
class CAPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAPE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CAPE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with cape::Mutex.
///
/// No predicate overload on purpose: Clang's analysis treats a lambda body
/// as a separate unannotated function, so a predicate reading GUARDED_BY
/// fields would warn. Write the standard explicit loop instead — the guarded
/// reads then sit in the scope that holds the lock:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` (which the caller must hold), blocks until
  /// notified, and reacquires `mu` before returning. Spurious wakeups are
  /// possible, as with any condition variable: always wait in a loop.
  void Wait(Mutex& mu) CAPE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  /// Like Wait but gives up after `timeout_ms` milliseconds. Returns false
  /// on timeout, true when notified (spurious wakeups included — re-check
  /// the predicate either way). Non-positive timeouts return false without
  /// blocking, so deadline-driven loops can pass a remaining budget directly.
  bool WaitFor(Mutex& mu, int64_t timeout_ms) CAPE_REQUIRES(mu) {
    if (timeout_ms <= 0) return false;
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
    lock.release();  // the caller's MutexLock keeps ownership
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cape

#endif  // CAPE_COMMON_MUTEX_H_
