#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cape {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("cannot parse empty string as int64");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("int64 overflow parsing '" + buf + "'");
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("invalid int64 literal '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("cannot parse empty string as double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double overflow parsing '" + buf + "'");
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("invalid double literal '" + buf + "'");
  }
  return v;
}

std::string FormatDouble(double value) {
  char buf[64];
  // %.17g round-trips but is noisy; try shorter representations first.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cape
