#ifndef CAPE_COMMON_STATUS_H_
#define CAPE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cape {

/// Machine-readable category of an error carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeError = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Status is the error-reporting vocabulary of the CAPE library.
///
/// Library code does not throw exceptions; every fallible operation returns
/// either a Status or a Result<T> (see result.h). An OK status carries no
/// allocation; error statuses carry a code and a message. This mirrors the
/// Arrow/RocksDB idiom recommended for database C++ code.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// compile-time warning everywhere and an error under -Werror builds
/// (CAPE_ANALYZE / CAPE_WERROR). Where discarding really is the intended
/// behavior, say so explicitly with CAPE_IGNORE_STATUS and a comment
/// explaining why (DESIGN.md §12).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// True for the two cooperative-stop codes (deadline/cancellation). Pipeline
  /// stages use this to distinguish "stop and return partial results" from a
  /// genuine error that must propagate.
  bool IsStop() const {
    return code() == StatusCode::kDeadlineExceeded || code() == StatusCode::kCancelled;
  }

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Two statuses compare equal when code and message both match.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status cheaply copyable; OK is represented by nullptr.
  std::shared_ptr<const State> state_;
};

}  // namespace cape

/// Documented discard of a Status (or Result<T>) return value.
///
/// `[[nodiscard]]` makes an ignored return a build error; this macro is the
/// explicit opt-out for the rare sites where dropping the status is a
/// deliberate, reviewed decision (e.g. best-effort cleanup on a path that is
/// already failing). Every use must carry a comment saying why discarding is
/// correct — tools/lint.py does not police this, reviewers do.
#define CAPE_IGNORE_STATUS(expr) static_cast<void>(expr)

#endif  // CAPE_COMMON_STATUS_H_
