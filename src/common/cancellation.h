#ifndef CAPE_COMMON_CANCELLATION_H_
#define CAPE_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/status.h"

namespace cape {

/// Why a cooperative stop was requested.
enum class StopReason : int { kNone = 0, kDeadlineExceeded = 1, kCancelled = 2 };

const char* StopReasonToString(StopReason reason);

/// The StopReason a stop Status (DeadlineExceeded/Cancelled) encodes; kNone
/// for every other status. Used to recover the reason from a Status that
/// crossed a thread boundary (e.g. out of ThreadPool::ParallelFor).
StopReason StopReasonFromStatus(const Status& status);

/// A point on the monotonic clock after which work should stop. The default
/// (and `Infinite()`) deadline never expires. Deadlines are plain values:
/// copy them freely into configs and worker threads.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive values produce an
  /// already-expired deadline (useful in tests).
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterNanos(int64_t ns) {
    return Deadline(Clock::now() + std::chrono::nanoseconds(ns));
  }

  bool infinite() const { return when_ == Clock::time_point::max(); }

  /// One clock read; false for infinite deadlines.
  bool Expired() const { return !infinite() && Clock::now() >= when_; }

  /// Nanoseconds until expiry (negative when expired); INT64_MAX if infinite.
  int64_t RemainingNanos() const {
    if (infinite()) return INT64_MAX;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(when_ - Clock::now())
        .count();
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}
  Clock::time_point when_ = Clock::time_point::max();
};

class CancellationSource;

/// Read side of a cancellation flag. The default token can never be
/// cancelled and costs one null check per query; a token obtained from a
/// CancellationSource shares that source's atomic flag. Tokens are cheap
/// shared_ptr copies and safe to read from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancellable() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: owns the flag, hands out tokens, and flips the flag with
/// RequestCancel() (e.g. from another thread when a client disconnects).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Rows processed between cooperative stop checks in block/stride scan
/// loops (operators, miners, FD counting). One shared constant so every
/// scan has the same worst-case stop latency, and so the checks sit outside
/// the inner loops — a per-row ShouldStop() in a tight loop both costs a
/// branch per element and defeats auto-vectorization. Matches the kernel
/// block size (kernels.h static_asserts they stay in sync).
inline constexpr int64_t kStopCheckStride = 2048;

/// Cooperative stop checker threaded through pipeline stages and operator
/// hot loops. ShouldStop() is designed to be called per row/candidate: it
/// reads the cancellation atomic every call but consults the clock only once
/// per `check_stride` calls, so a default-constructed token degenerates to a
/// couple of predictable branches. Once a stop is observed it is sticky.
///
/// StopToken has per-holder state (the stride countdown); copy one per
/// worker thread rather than sharing a pointer across threads.
class StopToken {
 public:
  /// Never stops.
  StopToken() = default;

  explicit StopToken(Deadline deadline, CancellationToken cancel = {},
                     int check_stride = kDefaultStride)
      : deadline_(deadline),
        cancel_(std::move(cancel)),
        stride_(check_stride < 1 ? 1 : check_stride),
        countdown_(0),
        armed_(!deadline.infinite() || cancel_.cancellable()) {}

  /// True once the deadline has expired or cancellation was requested.
  bool ShouldStop() {
    if (CAPE_PREDICT_TRUE(!armed_)) return false;
    if (reason_ != StopReason::kNone) return true;
    if (cancel_.cancelled()) {
      reason_ = StopReason::kCancelled;
      return true;
    }
    if (--countdown_ <= 0) {
      countdown_ = stride_;
      if (deadline_.Expired()) {
        reason_ = StopReason::kDeadlineExceeded;
        return true;
      }
    }
    return false;
  }

  /// Like ShouldStop() but always consults the clock — for stage boundaries
  /// where a stale stride countdown could mask an expired deadline.
  bool ShouldStopNow() {
    if (!armed_) return false;
    countdown_ = 0;
    return ShouldStop();
  }

  StopReason reason() const { return reason_; }

  /// OK while running; DeadlineExceeded/Cancelled once stopped.
  Status ToStatus() const;

  const Deadline& deadline() const { return deadline_; }

  static constexpr int kDefaultStride = 256;

 private:
  Deadline deadline_;
  CancellationToken cancel_;
  int stride_ = kDefaultStride;
  int countdown_ = 0;
  bool armed_ = false;
  StopReason reason_ = StopReason::kNone;
};

}  // namespace cape

/// Returns the stop Status (DeadlineExceeded/Cancelled) from the enclosing
/// function when `stop_ptr` (a StopToken*, may be null) reports a stop.
#define CAPE_RETURN_IF_STOPPED(stop_ptr)                                        \
  do {                                                                          \
    ::cape::StopToken* _stop = (stop_ptr);                                      \
    if (_stop != nullptr && CAPE_PREDICT_FALSE(_stop->ShouldStop())) {          \
      return _stop->ToStatus();                                                 \
    }                                                                           \
  } while (false)

/// Block-granularity variant for loops that check once per kStopCheckStride
/// rows instead of per row. Uses ShouldStopNow(): at block granularity the
/// clock read is amortized over thousands of rows, and ShouldStop()'s
/// internal stride would otherwise consult the clock only once per
/// stride*kStopCheckStride rows — far too stale for deadline enforcement.
#define CAPE_RETURN_IF_STOPPED_BLOCK(stop_ptr)                                  \
  do {                                                                          \
    ::cape::StopToken* _stop = (stop_ptr);                                      \
    if (_stop != nullptr && CAPE_PREDICT_FALSE(_stop->ShouldStopNow())) {       \
      return _stop->ToStatus();                                                 \
    }                                                                           \
  } while (false)

#endif  // CAPE_COMMON_CANCELLATION_H_
