#ifndef CAPE_COMMON_FAILPOINT_H_
#define CAPE_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

/// Failpoint framework (Arrow/RocksDB style): named fault-injection sites on
/// the IO/alloc-heavy paths of the pipeline. A site is a CAPE_FAILPOINT(name)
/// line inside a Status- or Result-returning function; when the site is
/// activated (via the test API below or the CAPE_FAILPOINTS environment
/// variable) the macro returns an error Status from the enclosing function,
/// letting tests prove that every stage converts injected faults into clean
/// Status returns — no crash, no leak, no partial mutation.
///
/// With CAPE_ENABLE_FAILPOINTS=OFF at configure time the macro compiles to
/// nothing. When compiled in but inactive (the production default) each site
/// costs a single relaxed atomic load and a predictable branch.
///
/// Environment syntax (parsed once at first use):
///   CAPE_FAILPOINTS="csv.read_row=io;mining.sort=internal@3"
/// i.e. `site=kind[@skip]` entries separated by ';', where kind is one of
/// io|internal|oom and skip is the number of hits to let through first.

namespace cape::failpoint {

/// Canonical list of every site compiled into the library; tests iterate
/// this to force a fault at each site in turn.
std::vector<std::string> AllSites();

/// True when at least one site is active (fast path: relaxed atomic).
bool AnyActive();

/// Arms `site` to fail with `code`/`message`. The first `skip` hits pass
/// through; after that each hit fails, `count` times in total (-1 =
/// unlimited). InvalidArgument when `site` is not a registered site.
Status Activate(const std::string& site, StatusCode code, std::string message,
                int skip = 0, int count = -1);

/// Disarms one site / all sites.
void Deactivate(const std::string& site);
void DeactivateAll();

/// Called by CAPE_FAILPOINT; returns the armed error when `site` fires.
Status Trigger(const char* site);

/// RAII guard for tests: arms a site on construction, disarms on scope exit.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site,
                           StatusCode code = StatusCode::kIOError,
                           std::string message = "injected fault", int skip = 0,
                           int count = -1)
      : site_(std::move(site)),
        status_(Activate(site_, code, std::move(message), skip, count)) {}
  ~ScopedFailpoint() { Deactivate(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// OK unless the site name was unknown.
  const Status& activation_status() const { return status_; }

 private:
  std::string site_;
  Status status_;
};

}  // namespace cape::failpoint

#ifdef CAPE_DISABLE_FAILPOINTS
#define CAPE_FAILPOINT(site) \
  do {                       \
  } while (false)
#else
#define CAPE_FAILPOINT(site)                                    \
  do {                                                          \
    if (CAPE_PREDICT_FALSE(::cape::failpoint::AnyActive())) {   \
      ::cape::Status _fp_st = ::cape::failpoint::Trigger(site); \
      if (!_fp_st.ok()) return _fp_st;                          \
    }                                                           \
  } while (false)
#endif

#endif  // CAPE_COMMON_FAILPOINT_H_
