#ifndef CAPE_COMMON_FAILPOINT_H_
#define CAPE_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

/// Failpoint framework (Arrow/RocksDB style): named fault-injection sites on
/// the IO/alloc-heavy paths of the pipeline. A site is a CAPE_FAILPOINT(name)
/// line inside a Status- or Result-returning function; when the site is
/// activated (via the test API below or the CAPE_FAILPOINTS environment
/// variable) the macro returns an error Status from the enclosing function,
/// letting tests prove that every stage converts injected faults into clean
/// Status returns — no crash, no leak, no partial mutation.
///
/// Sites with *degrade* semantics — where the correct response to a fault is
/// to absorb it (skip a poisoned cache entry, fall back to a cold mine)
/// rather than propagate it — use CAPE_FAILPOINT_FIRES(name) in a plain `if`
/// and handle the firing inline.
///
/// With CAPE_ENABLE_FAILPOINTS=OFF at configure time both macros compile to
/// nothing / false. When compiled in but inactive (the production default)
/// each site costs a single relaxed atomic load and a predictable branch.
///
/// Environment syntax (parsed once at first use):
///   CAPE_FAILPOINTS="csv.read_row=io;mining.sort=internal@3;explain.norm=io%0.01"
/// i.e. `site=kind[@skip][%probability]` entries separated by ';', where
/// kind is one of io|internal|oom, skip is the number of hits to let through
/// first (trigger-after-N), and probability in (0, 1] makes each eligible
/// hit fire with that probability from a deterministic per-site stream —
/// chaos mode without recompiles. Omitting `%probability` keeps the exact
/// every-hit-fires semantics.

namespace cape::failpoint {

/// Canonical list of every site compiled into the library; tests iterate
/// this to force a fault at each site in turn.
std::vector<std::string> AllSites();

/// True when at least one site is active (fast path: relaxed atomic).
bool AnyActive();

/// Arms `site` to fail with `code`/`message`. The first `skip` hits pass
/// through; after that each hit fails with probability `probability`
/// (sampled from a deterministic per-site stream reset by each Activate),
/// `count` times in total (-1 = unlimited). Hits that pass the skip gate but
/// lose the probability draw do not consume `count`. InvalidArgument when
/// `site` is not a registered site or `probability` is outside (0, 1].
Status Activate(const std::string& site, StatusCode code, std::string message,
                int skip = 0, int count = -1, double probability = 1.0);

/// Arms one site from a CAPE_FAILPOINTS-style entry
/// `site=kind[@skip][%probability]` (see the header comment). Exposed so
/// tests can exercise the env syntax without the parse-once env gate.
Status ActivateFromSpec(const std::string& entry);

/// Disarms one site / all sites.
void Deactivate(const std::string& site);
void DeactivateAll();

/// Called by CAPE_FAILPOINT; returns the armed error when `site` fires.
Status Trigger(const char* site);

/// RAII guard for tests: arms a site on construction, disarms on scope exit.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site,
                           StatusCode code = StatusCode::kIOError,
                           std::string message = "injected fault", int skip = 0,
                           int count = -1, double probability = 1.0)
      : site_(std::move(site)),
        status_(Activate(site_, code, std::move(message), skip, count, probability)) {}
  ~ScopedFailpoint() { Deactivate(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// OK unless the site name was unknown.
  const Status& activation_status() const { return status_; }

 private:
  std::string site_;
  Status status_;
};

}  // namespace cape::failpoint

#ifdef CAPE_DISABLE_FAILPOINTS
#define CAPE_FAILPOINT(site) \
  do {                       \
  } while (false)
#define CAPE_FAILPOINT_FIRES(site) false
#else
#define CAPE_FAILPOINT(site)                                    \
  do {                                                          \
    if (CAPE_PREDICT_FALSE(::cape::failpoint::AnyActive())) {   \
      ::cape::Status _fp_st = ::cape::failpoint::Trigger(site); \
      if (!_fp_st.ok()) return _fp_st;                          \
    }                                                           \
  } while (false)
/// Soft-site form: evaluates to true when the armed site fires, for degrade
/// paths where the caller absorbs the fault instead of returning it.
#define CAPE_FAILPOINT_FIRES(site)                        \
  (CAPE_PREDICT_FALSE(::cape::failpoint::AnyActive()) &&  \
   !::cape::failpoint::Trigger(site).ok())
#endif

#endif  // CAPE_COMMON_FAILPOINT_H_
