#ifndef CAPE_COMMON_HASH_H_
#define CAPE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace cape {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename T>
size_t HashValue(const T& v) {
  return std::hash<T>{}(v);
}

/// FNV-1a over raw bytes; used for composite group-by keys.
inline size_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

/// Incremental FNV-1a (64-bit) for content fingerprints and store checksums.
/// The digest is a pure function of the byte stream fed to Update, so two
/// digests are comparable across processes and across save/load boundaries.
/// Single-byte substitutions always change the digest (xor then multiply by
/// an odd prime is injective per step), which is what makes it usable as a
/// corruption check for the binary pattern store.
class Fnv64 {
 public:
  void Update(const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }

  /// Fixed-width helpers so digests do not depend on caller-side buffering.
  void UpdateU8(uint8_t v) { Update(&v, sizeof(v)); }
  void UpdateU32(uint32_t v) { Update(&v, sizeof(v)); }
  void UpdateU64(uint64_t v) { Update(&v, sizeof(v)); }
  void UpdateI64(int64_t v) { Update(&v, sizeof(v)); }
  void UpdateDouble(double v) { Update(&v, sizeof(v)); }
  /// Length-prefixed so "ab","c" and "a","bc" digest differently.
  void UpdateString(std::string_view s) {
    UpdateU64(s.size());
    Update(s.data(), s.size());
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

}  // namespace cape

#endif  // CAPE_COMMON_HASH_H_
