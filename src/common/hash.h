#ifndef CAPE_COMMON_HASH_H_
#define CAPE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace cape {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename T>
size_t HashValue(const T& v) {
  return std::hash<T>{}(v);
}

/// FNV-1a over raw bytes; used for composite group-by keys.
inline size_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace cape

#endif  // CAPE_COMMON_HASH_H_
