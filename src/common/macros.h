#ifndef CAPE_COMMON_MACROS_H_
#define CAPE_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define CAPE_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::cape::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

#define CAPE_CONCAT_IMPL(x, y) x##y
#define CAPE_CONCAT(x, y) CAPE_CONCAT_IMPL(x, y)

/// Evaluates a Result<T>-returning expression; on success binds the value to
/// `lhs` (which may include a declaration), on failure returns the status.
#define CAPE_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  CAPE_ASSIGN_OR_RETURN_IMPL(CAPE_CONCAT(_res_, __LINE__), lhs, rexpr)

#define CAPE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()

#define CAPE_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define CAPE_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))

#endif  // CAPE_COMMON_MACROS_H_
