#ifndef CAPE_COMMON_LOGGING_H_
#define CAPE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cape {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level below which log statements are discarded.
/// Defaults to kWarning so library internals stay quiet in tests/benches.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log statement and emits it to stderr on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lower-precedence-than-<< sink so CAPE_LOG(...) << a << b parses as one
/// expression whose whole stream chain is evaluated lazily.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace cape

#define CAPE_LOG(level)                                                  \
  (::cape::LogLevel::k##level < ::cape::GetLogLevel())                   \
      ? (void)0                                                          \
      : ::cape::internal::Voidify() &                                    \
            ::cape::internal::LogMessage(::cape::LogLevel::k##level,     \
                                         __FILE__, __LINE__)             \
                .stream()

#define CAPE_LOG_STREAM(level) \
  ::cape::internal::LogMessage(::cape::LogLevel::k##level, __FILE__, __LINE__).stream()

/// Internal-invariant check: aborts with a message when `cond` is false.
/// Used for conditions that indicate a bug in CAPE itself, never for user
/// input validation (which returns Status).
#define CAPE_CHECK(cond)                                                     \
  if (__builtin_expect(!!(cond), 1)) {                                       \
  } else                                                                     \
    ::cape::internal::LogMessage(::cape::LogLevel::kFatal, __FILE__,         \
                                 __LINE__)                                   \
        .stream()                                                            \
        << "Check failed: " #cond " "

#define CAPE_DCHECK(cond) CAPE_CHECK(cond)

#endif  // CAPE_COMMON_LOGGING_H_
