#include "core/pattern_cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <tuple>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "pattern/pattern_io.h"
#include "stats/regression.h"

namespace cape {

namespace {

std::string EntryFileName(uint64_t fingerprint, uint64_t digest) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "arp-%016" PRIx64 "-%016" PRIx64 ".arpb", fingerprint,
                digest);
  return buf;
}

/// Parses "arp-<16 hex>-<16 hex>.arpb"; false for any other filename.
bool ParseEntryFileName(const std::string& name, uint64_t* fingerprint, uint64_t* digest) {
  constexpr size_t kLen = 4 + 16 + 1 + 16 + 5;  // "arp-" hex "-" hex ".arpb"
  if (name.size() != kLen || name.rfind("arp-", 0) != 0 ||
      name.substr(kLen - 5) != ".arpb" || name[4 + 16] != '-') {
    return false;
  }
  char* end = nullptr;
  const std::string fp_hex = name.substr(4, 16);
  const std::string dg_hex = name.substr(4 + 16 + 1, 16);
  *fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
  if (end != fp_hex.c_str() + 16) return false;
  *digest = std::strtoull(dg_hex.c_str(), &end, 16);
  return end == dg_hex.c_str() + 16;
}

}  // namespace

uint64_t EstimatePatternSetBytes(const PatternSet& patterns) {
  uint64_t bytes = sizeof(PatternSet);
  for (const GlobalPattern& gp : patterns.patterns()) {
    bytes += sizeof(GlobalPattern);
    for (const LocalPattern& local : gp.locals) {
      bytes += sizeof(LocalPattern);
      for (const Value& v : local.fragment) {
        bytes += sizeof(Value);
        if (!v.is_null() && v.type() == DataType::kString) {
          bytes += v.string_value().size();
        }
      }
      if (local.model != nullptr) {
        bytes += sizeof(LinearRegression);
        if (local.model->type() == ModelType::kLinear) {
          const auto* linear = static_cast<const LinearRegression*>(local.model.get());
          bytes += linear->coefficients().size() * sizeof(double);
        }
      }
    }
  }
  return bytes;
}

size_t PatternCache::KeyHash::operator()(const Key& k) const {
  Fnv64 h;
  h.UpdateU64(k.fingerprint);
  h.UpdateU64(k.digest);
  return static_cast<size_t>(h.digest());
}

PatternCache::PatternCache(uint64_t byte_budget) : byte_budget_(byte_budget) {}

std::shared_ptr<const PatternSet> PatternCache::Lookup(uint64_t table_fingerprint,
                                                       uint64_t mining_config_digest) {
  const Key key{table_fingerprint, mining_config_digest};
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  // Simulated concurrent eviction: the entry vanished between the caller's
  // decision to look and our read. Degrades to a miss — the caller mines
  // cold, exactly as if the LRU had raced ahead of it.
  if (CAPE_FAILPOINT_FIRES("pattern_cache.lookup_race")) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.patterns;
}

int64_t PatternCache::Insert(uint64_t table_fingerprint, uint64_t mining_config_digest,
                             std::shared_ptr<const PatternSet> patterns,
                             std::shared_ptr<const Schema> schema) {
  if (patterns == nullptr) return 0;
  const Key key{table_fingerprint, mining_config_digest};
  const uint64_t bytes = EstimatePatternSetBytes(*patterns);
  MutexLock lock(mu_);
  EraseLocked(key);
  lru_.push_front(key);
  entries_[key] = Entry{std::move(patterns), std::move(schema), bytes, lru_.begin()};
  bytes_used_ += bytes;
  return EvictToBudgetLocked();
}

int64_t PatternCache::Upgrade(uint64_t old_fingerprint, uint64_t new_fingerprint,
                              uint64_t mining_config_digest,
                              std::shared_ptr<const PatternSet> patterns,
                              std::shared_ptr<const Schema> schema) {
  if (patterns == nullptr) return 0;
  const Key old_key{old_fingerprint, mining_config_digest};
  const Key new_key{new_fingerprint, mining_config_digest};
  const uint64_t bytes = EstimatePatternSetBytes(*patterns);
  MutexLock lock(mu_);
  EraseLocked(old_key);
  EraseLocked(new_key);
  lru_.push_front(new_key);
  entries_[new_key] = Entry{std::move(patterns), std::move(schema), bytes, lru_.begin()};
  bytes_used_ += bytes;
  return EvictToBudgetLocked();
}

void PatternCache::Erase(uint64_t table_fingerprint, uint64_t mining_config_digest) {
  MutexLock lock(mu_);
  EraseLocked(Key{table_fingerprint, mining_config_digest});
}

bool PatternCache::EraseLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

int64_t PatternCache::EvictToBudgetLocked() {
  int64_t evicted = 0;
  while (bytes_used_ > byte_budget_ && entries_.size() > 1) {
    const Key victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

Status PatternCache::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir + "': " + ec.message());
  }
  // Snapshot the entries under the lock, then write with it released:
  // holding mu_ across per-entry disk writes would block every concurrent
  // Lookup/Insert for the whole save. The shared_ptrs keep each pattern set
  // alive even if the entry is evicted mid-save.
  struct Snapshot {
    uint64_t fingerprint;
    uint64_t digest;
    std::shared_ptr<const PatternSet> patterns;
    std::shared_ptr<const Schema> schema;
  };
  std::vector<Snapshot> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      snapshot.push_back({key.fingerprint, key.digest, entry.patterns, entry.schema});
    }
  }
  // Deterministic save order (and a deterministic failpoint trigger point),
  // independent of hash-bucket layout.
  std::sort(snapshot.begin(), snapshot.end(), [](const Snapshot& a, const Snapshot& b) {
    return std::tie(a.fingerprint, a.digest) < std::tie(b.fingerprint, b.digest);
  });
  for (const Snapshot& s : snapshot) {
    // Injected ENOSPC-style write failure; propagated so callers know the
    // on-disk snapshot is incomplete.
    CAPE_FAILPOINT("pattern_cache.save_entry");
    const std::string path =
        (std::filesystem::path(dir) / EntryFileName(s.fingerprint, s.digest)).string();
    CAPE_RETURN_IF_ERROR(SavePatternSetBinary(*s.patterns, *s.schema, path, s.digest));
  }
  return Status::OK();
}

Result<int> PatternCache::LoadFromDirectory(const std::string& dir, const Schema& schema,
                                            uint64_t table_fingerprint) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read directory '" + dir + "': " + ec.message());
  }
  auto schema_copy = std::make_shared<Schema>(schema);
  int loaded = 0;
  for (const auto& dirent : it) {
    uint64_t fingerprint = 0;
    uint64_t digest = 0;
    if (!ParseEntryFileName(dirent.path().filename().string(), &fingerprint, &digest)) {
      continue;
    }
    if (fingerprint != table_fingerprint) continue;
    // Injected corrupt-read: treat the entry exactly like a store that fails
    // validation below — skip it, leave the cache cold for that key.
    if (CAPE_FAILPOINT_FIRES("pattern_cache.load_entry")) continue;
    PatternStoreMeta meta;
    Result<PatternSet> patterns =
        LoadPatternSetBinary(dirent.path().string(), schema, &meta);
    // A store that fails validation (corrupt bytes, schema drift) is
    // skipped, not fatal: disk state must never poison the serving cache.
    if (!patterns.ok()) continue;
    Insert(fingerprint, meta.mining_config_digest,
           std::make_shared<const PatternSet>(std::move(patterns).ValueOrDie()), schema_copy);
    ++loaded;
  }
  return loaded;
}

PatternCache::Stats PatternCache::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = static_cast<int64_t>(entries_.size());
  s.bytes_used = bytes_used_;
  s.byte_budget = byte_budget_;
  return s;
}

void PatternCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

}  // namespace cape
