#ifndef CAPE_CORE_ENGINE_H_
#define CAPE_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/pattern_cache.h"
#include "explain/baseline.h"
#include "pattern/incremental.h"
#include "explain/explain_session.h"
#include "explain/explainer.h"
#include "pattern/mining.h"
#include "relational/csv.h"
#include "relational/table.h"

namespace cape {

/// Per-request observability: what the engine did for the most recent load,
/// mining, and explanation calls (wall time per stage, rows scanned,
/// pruning counters, and whether the stage was cut short by a deadline or
/// cancellation).
struct RunStats {
  // Load stage (FromCsvFile).
  int64_t rows_loaded = 0;
  int64_t rows_quarantined = 0;

  // Mining stage (last MinePatterns call). mine_ns is wall time; mine_cpu_ns
  // is work summed across pool workers (their ratio is the effective mining
  // parallelism; equal when num_threads == 1 up to timer overhead).
  int64_t mine_ns = 0;
  int64_t mine_cpu_ns = 0;
  int64_t mine_rows_scanned = 0;
  int64_t mine_candidates = 0;
  int64_t mine_candidates_skipped_fd = 0;
  int64_t patterns_mined = 0;
  bool mine_truncated = false;
  StopReason mine_stop_reason = StopReason::kNone;

  // Explain stage (last Explain call). Wall vs. summed-CPU split as above.
  int64_t explain_ns = 0;
  int64_t explain_cpu_ns = 0;
  int64_t explain_pairs_considered = 0;
  int64_t explain_pairs_pruned = 0;
  int64_t explain_tuples_checked = 0;
  bool explain_partial = false;
  StopReason explain_stop_reason = StopReason::kNone;
  std::string explain_stopped_stage;

  // Pattern cache (cumulative over this engine's MinePatterns/LoadPatterns
  // calls; zero when no cache is attached). A warm-cache MinePatterns run
  // reports cache_hits == 1 with mine_ns == 0: zero mining work was done.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;

  // Incremental maintenance counters (cumulative over this engine's
  // AppendAndRemine calls; all zero otherwise — DESIGN.md §16).
  // `maint_patterns_revalidated` counts (fragment, candidate) combinations
  // re-fitted because an append touched their group keys;
  // `maint_patterns_retained` counts local patterns carried into the new set
  // verbatim, without any re-fit — the incremental win.
  // `maint_full_remines` counts calls that fell back to a from-scratch mine
  // (unsupported config, NaN data, or an injected/real maintenance fault).
  int64_t maint_appends = 0;
  int64_t maint_rows_appended = 0;
  int64_t maint_patterns_revalidated = 0;
  int64_t maint_patterns_retained = 0;
  int64_t maint_full_remines = 0;

  // Serving counters (cumulative, bumped by the request scheduler when this
  // engine backs a server — DESIGN.md §13; zero otherwise). `serve_requests`
  // counts admitted requests; `serve_rejected` structured admission
  // rejections (OVERLOADED / RETRY_AFTER); `serve_shed` admitted requests
  // dropped before execution because their deadline had already expired;
  // `serve_deadline_truncated` requests answered with a deadline-truncated
  // (partial but subset-consistent) result.
  int64_t serve_requests = 0;
  int64_t serve_rejected = 0;
  int64_t serve_shed = 0;
  int64_t serve_deadline_truncated = 0;

  // Paged-storage counters (snapshot of the table's PageSource cache at
  // run_stats() time; all zero for fully in-memory tables — DESIGN.md §15).
  // page_misses is the page-fault count: pins that had to read from disk.
  int64_t page_hits = 0;
  int64_t page_misses = 0;
  int64_t page_evictions = 0;
  int64_t page_bytes_read = 0;
  int64_t page_bytes_pinned = 0;
};

/// The CAPE system facade: load a relation, mine aggregate regression
/// patterns offline, then answer "why is this aggregate high/low?" questions
/// with ranked counterbalance explanations.
///
/// Typical use (see examples/quickstart.cc):
///
///   CAPE_ASSIGN_OR_RETURN(auto engine, Engine::FromCsvFile("pubs.csv"));
///   engine.mining_config().local_gof_threshold = 0.3;
///   CAPE_RETURN_IF_ERROR(engine.MinePatterns());
///   CAPE_ASSIGN_OR_RETURN(auto question,
///       engine.MakeQuestion({"author", "venue", "year"},
///                           {Value::String("AX"), Value::String("SIGKDD"),
///                            Value::Int64(2007)},
///                           AggFunc::kCount, "*", Direction::kLow));
///   CAPE_ASSIGN_OR_RETURN(auto result, engine.Explain(question));
///   std::cout << engine.RenderExplanations(result.explanations);
///
/// Concurrency contract (the serving path relies on this): once the offline
/// phase is done — configuration set, patterns mined or loaded — the const
/// surface is re-entrant. Any number of threads may call Explain(),
/// ExplainBaseline(), MakeQuestion(), MakeExplainSession(), run_stats(), and
/// the accessors concurrently; observability is recorded under an internal
/// stats mutex (last-writer-wins for the per-request explain_* fields,
/// exact sums for the cumulative counters). The non-const surface
/// (MinePatterns, LoadPatterns, set_* and the mutable config accessors) is
/// NOT safe to run concurrently with the const surface — servers do all
/// mutation before accepting traffic (DESIGN.md §13).
class Engine {
 public:
  /// Wraps an in-memory relation. The table must validate.
  static Result<Engine> FromTable(TablePtr table);

  /// Loads a relation from a CSV file (types inferred by default). With
  /// options.quarantine_malformed set, malformed rows are skipped and
  /// counted in run_stats().rows_quarantined (and in `report` when given).
  static Result<Engine> FromCsvFile(const std::string& path,
                                    const CsvReadOptions& options = {},
                                    CsvParseReport* report = nullptr);

  const TablePtr& table() const { return table_; }
  const Schema& schema() const { return *table_->schema(); }

  /// Mutable configuration, applied at the next MinePatterns()/Explain().
  MiningConfig& mining_config() { return mining_config_; }
  const MiningConfig& mining_config() const { return mining_config_; }
  ExplainConfig& explain_config() { return explain_config_; }
  DistanceModel& distance_model() { return distance_model_; }

  /// Sets the worker count for both offline mining and online explanation
  /// (clamped to >= 1). Results are bit-identical at any value; see
  /// DESIGN.md §9.
  void set_num_threads(int num_threads) {
    const int n = num_threads < 1 ? 1 : num_threads;
    mining_config_.num_threads = n;
    explain_config_.num_threads = n;
  }
  const DistanceModel& distance_model() const { return distance_model_; }

  /// Attaches a (possibly shared) serving cache. When set, MinePatterns
  /// first looks up (table fingerprint, mining-config digest) and serves a
  /// hit with zero mining work; untruncated results are inserted after
  /// mining. Deadline-truncated or cancelled runs are never cached — they
  /// hold a subset of the full result and would poison later requests.
  /// Non-owning; the cache must outlive the engine. nullptr detaches.
  void set_pattern_cache(PatternCache* cache) { pattern_cache_ = cache; }
  PatternCache* pattern_cache() const { return pattern_cache_; }

  /// Runs offline ARP mining with the named algorithm ("ARP-MINE" default;
  /// also NAIVE, CUBE, SHARE-GRP). Replaces any previously mined patterns.
  /// When mining_config().approx_sample_rows > 0 the miner is wrapped in the
  /// sampled first-pass layer; approximate results bypass the serving cache.
  Status MinePatterns(const std::string& miner_name = "ARP-MINE");

  /// Appends `rows` to the relation and brings the mined pattern set up to
  /// date incrementally (DESIGN.md §16): a PatternMaintainer folds only the
  /// delta, re-validating exactly the fragments whose group keys the new
  /// rows touch, and the result is byte-identical to re-mining the grown
  /// table from scratch. Falls back to a full re-mine — counted in
  /// run_stats().maint_full_remines — when the config is not maintainable
  /// (FD optimizations, sampling), the data defeats byte-stable fragment
  /// identity (NaN), no patterns were mined yet, or maintenance itself
  /// fails. On a deadline/cancellation stop the rows stay appended, the
  /// stop Status is returned, and the maintainer remains valid at its
  /// previous fold point: the pattern set is stale but intact, and the next
  /// call catches up. All rows are validated against the schema before any
  /// is appended. Non-const like MinePatterns: callers must serialize this
  /// against the const serving surface (the server's APPEND verb does).
  Status AppendAndRemine(const std::vector<Row>& rows,
                         const std::string& miner_name = "ARP-MINE");

  /// Injects an externally mined or filtered pattern set (used by benches
  /// to vary N_P).
  void SetPatterns(PatternSet patterns) {
    patterns_ = std::make_shared<const PatternSet>(std::move(patterns));
  }

  /// Persists the mined patterns (offline phase) / restores them (online
  /// phase). SavePatterns writes the human-readable text form;
  /// SavePatternsBinary writes the binary store (with this engine's
  /// mining-config digest). LoadPatterns sniffs the format, validates the
  /// embedded schema, and — when a cache is attached and the store records
  /// a config digest — warms the cache with the loaded set.
  Status SavePatterns(const std::string& path) const;
  Status SavePatternsBinary(const std::string& path) const;
  Status LoadPatterns(const std::string& path);

  bool has_patterns() const { return patterns_ != nullptr; }
  const PatternSet& patterns() const { return *patterns_; }
  /// Shared handle to the mined set (what the cache and ExplainSession
  /// hold); nullptr before MinePatterns/SetPatterns/LoadPatterns.
  const std::shared_ptr<const PatternSet>& shared_patterns() const { return patterns_; }
  const MiningProfile& mining_profile() const { return mining_profile_; }

  /// Snapshot of the per-request statistics for the most recent
  /// load/mine/explain calls plus the cumulative cache/serving counters.
  /// Returned by value under the stats mutex, so a snapshot taken while
  /// other threads run Explain() is internally consistent (never torn).
  RunStats run_stats() const CAPE_EXCLUDES(stats_cell_->mu) {
    RunStats snapshot;
    {
      MutexLock lock(stats_cell_->mu);
      snapshot = stats_cell_->stats;
    }
    // Overlay the live page-cache counters (the PageSource keeps its own
    // thread-safe counters; snapshotting here keeps them fresh without the
    // engine having to hook every pin).
    if (table_ != nullptr && table_->page_source() != nullptr) {
      const PageSourceStats ps = table_->page_source()->stats();
      snapshot.page_hits = ps.hits;
      snapshot.page_misses = ps.misses;
      snapshot.page_evictions = ps.evictions;
      snapshot.page_bytes_read = ps.bytes_read;
      snapshot.page_bytes_pinned = ps.bytes_pinned;
    }
    return snapshot;
  }

  /// Adds to the cumulative serving counters (called by the request
  /// scheduler; each delta may be zero). Thread-safe.
  void RecordServeCounters(int64_t requests, int64_t rejected, int64_t shed,
                           int64_t deadline_truncated) const CAPE_EXCLUDES(stats_cell_->mu) {
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.serve_requests += requests;
    stats_cell_->stats.serve_rejected += rejected;
    stats_cell_->stats.serve_shed += shed;
    stats_cell_->stats.serve_deadline_truncated += deadline_truncated;
  }

  /// Builds a validated user question against this engine's relation.
  Result<UserQuestion> MakeQuestion(const std::vector<std::string>& group_by,
                                    const std::vector<Value>& group_values, AggFunc agg,
                                    const std::string& agg_attr, Direction dir) const;

  /// Generates top-k counterbalance explanations. `optimized` selects
  /// EXPL-GEN-OPT (Section 3.5) over EXPL-GEN-NAIVE (Algorithm 1).
  /// Requires MinePatterns()/SetPatterns() to have run.
  Result<ExplainResult> Explain(const UserQuestion& question, bool optimized = true) const;

  /// Opens a batch serving session over the current pattern set: answers
  /// many questions while memoizing question-independent work (aggregated
  /// data tables, refinement adjacency). Results are byte-identical to
  /// calling Explain() per question. Requires patterns.
  Result<ExplainSession> MakeExplainSession() const;

  /// The Appendix A.2 pattern-free baseline, for comparison.
  Result<ExplainResult> ExplainBaseline(const UserQuestion& question) const;

  /// Paper-style ranked table rendering.
  std::string RenderExplanations(const std::vector<Explanation>& explanations) const;

  /// Multi-line dump of the mined pattern set.
  std::string RenderPatterns(size_t max_patterns = 50) const;

 private:
  explicit Engine(TablePtr table);

  /// The incremental path of AppendAndRemine: ensure a maintainer exists for
  /// the current config, absorb the delta, and publish the finalized set.
  Status MaintainIncrementally(uint64_t config_digest);

  /// Stats live behind a heap cell so the mutex survives Engine moves and
  /// const methods (Explain) can record observability without `mutable` on
  /// the whole struct.
  struct StatsCell {
    mutable Mutex mu;
    RunStats stats CAPE_GUARDED_BY(mu);
  };

  TablePtr table_;
  MiningConfig mining_config_;
  ExplainConfig explain_config_;
  DistanceModel distance_model_;
  std::shared_ptr<const PatternSet> patterns_;
  PatternCache* pattern_cache_ = nullptr;
  MiningProfile mining_profile_;
  /// Lazily built by AppendAndRemine; reset when the mining config digest
  /// diverges or maintenance degrades to a full re-mine.
  std::unique_ptr<PatternMaintainer> maintainer_;
  std::unique_ptr<StatsCell> stats_cell_;
};

}  // namespace cape

#endif  // CAPE_CORE_ENGINE_H_
