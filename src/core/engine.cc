#include "core/engine.h"

#include "common/macros.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"

namespace cape {

Engine::Engine(TablePtr table)
    : table_(std::move(table)), distance_model_(DistanceModel::MakeDefault(*table_)) {}

Result<Engine> Engine::FromTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("table must not be null");
  CAPE_RETURN_IF_ERROR(table->Validate());
  if (table->num_columns() > 64) {
    return Status::InvalidArgument("relations wider than 64 attributes are not supported");
  }
  return Engine(std::move(table));
}

Result<Engine> Engine::FromCsvFile(const std::string& path, const CsvReadOptions& options,
                                   CsvParseReport* report) {
  CsvParseReport local_report;
  if (report == nullptr) report = &local_report;
  CAPE_ASSIGN_OR_RETURN(TablePtr table, ReadCsvFile(path, options, report));
  CAPE_ASSIGN_OR_RETURN(Engine engine, FromTable(std::move(table)));
  engine.run_stats_.rows_loaded = report->num_rows_loaded;
  engine.run_stats_.rows_quarantined = report->num_rows_quarantined;
  return engine;
}

Status Engine::MinePatterns(const std::string& miner_name) {
  CAPE_ASSIGN_OR_RETURN(auto miner, MakeMinerByName(miner_name));
  CAPE_ASSIGN_OR_RETURN(MiningResult result, miner->Mine(*table_, mining_config_));
  patterns_ = std::move(result.patterns);
  mining_profile_ = result.profile;
  run_stats_.mine_ns = result.profile.total_ns;
  run_stats_.mine_cpu_ns = result.profile.cpu_ns;
  run_stats_.mine_rows_scanned = result.profile.num_rows_scanned;
  run_stats_.mine_candidates = result.profile.num_candidates;
  run_stats_.mine_candidates_skipped_fd = result.profile.num_candidates_skipped_fd;
  run_stats_.patterns_mined = static_cast<int64_t>(patterns_->size());
  run_stats_.mine_truncated = result.truncated;
  run_stats_.mine_stop_reason = result.stop_reason;
  return Status::OK();
}

Status Engine::SavePatterns(const std::string& path) const {
  if (!patterns_.has_value()) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSet(*patterns_, schema(), path);
}

Status Engine::LoadPatterns(const std::string& path) {
  CAPE_ASSIGN_OR_RETURN(PatternSet loaded, LoadPatternSet(path, schema()));
  patterns_ = std::move(loaded);
  return Status::OK();
}

Result<UserQuestion> Engine::MakeQuestion(const std::vector<std::string>& group_by,
                                          const std::vector<Value>& group_values,
                                          AggFunc agg, const std::string& agg_attr,
                                          Direction dir) const {
  return MakeUserQuestion(table_, group_by, group_values, agg, agg_attr, dir);
}

Result<ExplainResult> Engine::Explain(const UserQuestion& question, bool optimized) const {
  if (!patterns_.has_value()) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  auto generator = optimized ? MakeOptimizedExplainer() : MakeNaiveExplainer();
  CAPE_ASSIGN_OR_RETURN(
      ExplainResult result,
      generator->Explain(question, *patterns_, distance_model_, explain_config_));
  run_stats_.explain_ns = result.profile.total_ns;
  run_stats_.explain_cpu_ns = result.profile.cpu_ns;
  run_stats_.explain_pairs_considered = result.profile.num_refinement_pairs;
  run_stats_.explain_pairs_pruned = result.profile.num_pairs_pruned;
  run_stats_.explain_tuples_checked = result.profile.num_tuples_checked;
  run_stats_.explain_partial = result.partial;
  run_stats_.explain_stop_reason = result.stop_reason;
  run_stats_.explain_stopped_stage = result.stopped_stage;
  return result;
}

Result<ExplainResult> Engine::ExplainBaseline(const UserQuestion& question) const {
  return BaselineExplain(question, distance_model_, explain_config_);
}

std::string Engine::RenderExplanations(const std::vector<Explanation>& explanations) const {
  return RenderExplanationTable(explanations, schema());
}

std::string Engine::RenderPatterns(size_t max_patterns) const {
  if (!patterns_.has_value()) return "(no patterns mined)\n";
  return patterns_->ToString(schema(), max_patterns);
}

}  // namespace cape
