#include "core/engine.h"

#include "common/failpoint.h"
#include "common/macros.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"

namespace cape {

Engine::Engine(TablePtr table)
    : table_(std::move(table)),
      distance_model_(DistanceModel::MakeDefault(*table_)),
      stats_cell_(std::make_unique<StatsCell>()) {}

Result<Engine> Engine::FromTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("table must not be null");
  CAPE_RETURN_IF_ERROR(table->Validate());
  if (table->num_columns() > 64) {
    return Status::InvalidArgument("relations wider than 64 attributes are not supported");
  }
  return Engine(std::move(table));
}

Result<Engine> Engine::FromCsvFile(const std::string& path, const CsvReadOptions& options,
                                   CsvParseReport* report) {
  CsvParseReport local_report;
  if (report == nullptr) report = &local_report;
  CAPE_ASSIGN_OR_RETURN(TablePtr table, ReadCsvFile(path, options, report));
  CAPE_ASSIGN_OR_RETURN(Engine engine, FromTable(std::move(table)));
  {
    MutexLock lock(engine.stats_cell_->mu);
    engine.stats_cell_->stats.rows_loaded = report->num_rows_loaded;
    engine.stats_cell_->stats.rows_quarantined = report->num_rows_quarantined;
  }
  return engine;
}

Status Engine::MinePatterns(const std::string& miner_name) {
  // Approximate (sampled) results carry error bounds, not guarantees; they
  // never enter the serving cache even though their digest would segregate
  // them — a sampled set must be an explicit per-run choice, not an
  // accidental cache hit.
  const bool approximate = mining_config_.approx_sample_rows > 0;
  uint64_t fingerprint = 0;
  uint64_t config_digest = 0;
  if (pattern_cache_ != nullptr && !approximate) {
    fingerprint = table_->Fingerprint();
    config_digest = MiningConfigDigest(mining_config_);
    if (auto cached = pattern_cache_->Lookup(fingerprint, config_digest)) {
      // Serving-cache hit: zero mining work. mine_ns == 0 is the observable
      // contract benches and tests pin (DESIGN.md §11).
      patterns_ = std::move(cached);
      mining_profile_ = MiningProfile{};
      MutexLock lock(stats_cell_->mu);
      RunStats& stats = stats_cell_->stats;
      stats.mine_ns = 0;
      stats.mine_cpu_ns = 0;
      stats.mine_rows_scanned = 0;
      stats.mine_candidates = 0;
      stats.mine_candidates_skipped_fd = 0;
      stats.patterns_mined = static_cast<int64_t>(patterns_->size());
      stats.mine_truncated = false;
      stats.mine_stop_reason = StopReason::kNone;
      stats.cache_hits += 1;
      return Status::OK();
    }
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.cache_misses += 1;
  }
  CAPE_ASSIGN_OR_RETURN(auto miner, MakeMinerByName(miner_name));
  if (approximate) miner = MakeSampledMiner(std::move(miner));
  CAPE_ASSIGN_OR_RETURN(MiningResult result, miner->Mine(*table_, mining_config_));
  patterns_ = std::make_shared<const PatternSet>(std::move(result.patterns));
  mining_profile_ = result.profile;
  {
    MutexLock lock(stats_cell_->mu);
    RunStats& stats = stats_cell_->stats;
    stats.mine_ns = result.profile.total_ns;
    stats.mine_cpu_ns = result.profile.cpu_ns;
    stats.mine_rows_scanned = result.profile.num_rows_scanned;
    stats.mine_candidates = result.profile.num_candidates;
    stats.mine_candidates_skipped_fd = result.profile.num_candidates_skipped_fd;
    stats.patterns_mined = static_cast<int64_t>(patterns_->size());
    stats.mine_truncated = result.truncated;
    stats.mine_stop_reason = result.stop_reason;
  }
  // Truncated results hold a subset of the full pattern set; caching one
  // would serve incomplete explanations to every later request. Cache
  // admission itself is best-effort: a fault here (simulated concurrent
  // eviction / admission race) keeps the freshly mined result and simply
  // leaves the cache cold — the request still succeeds.
  if (pattern_cache_ != nullptr && !approximate && !result.truncated &&
      !CAPE_FAILPOINT_FIRES("engine.cache_admit")) {
    const int64_t evictions =
        pattern_cache_->Insert(fingerprint, config_digest, patterns_, table_->schema());
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.cache_evictions += evictions;
  }
  return Status::OK();
}

Status Engine::AppendAndRemine(const std::vector<Row>& rows,
                               const std::string& miner_name) {
  // All-or-nothing: every row must validate before any is appended.
  for (const Row& row : rows) CAPE_RETURN_IF_ERROR(table_->ValidateRow(row));
  const uint64_t config_digest = MiningConfigDigest(mining_config_);
  const bool use_cache =
      pattern_cache_ != nullptr && mining_config_.approx_sample_rows == 0;
  uint64_t old_fingerprint = 0;
  // O(delta) thanks to the table's incremental fingerprint chain — this is
  // the pre-append key the cache entry currently lives under.
  if (use_cache) old_fingerprint = table_->Fingerprint();
  for (const Row& row : rows) CAPE_RETURN_IF_ERROR(table_->AppendRow(row));
  {
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.maint_appends += 1;
    stats_cell_->stats.maint_rows_appended += static_cast<int64_t>(rows.size());
  }

  Status incremental = patterns_ == nullptr
                           ? Status::InvalidArgument("no prior pattern set to maintain")
                           : MaintainIncrementally(config_digest);
  if (incremental.ok()) {
    if (use_cache) {
      const int64_t evictions =
          pattern_cache_->Upgrade(old_fingerprint, table_->Fingerprint(), config_digest,
                                  patterns_, table_->schema());
      MutexLock lock(stats_cell_->mu);
      stats_cell_->stats.cache_evictions += evictions;
    }
    return Status::OK();
  }
  // Deadline/cancellation: the rows are appended and the maintainer is still
  // valid at its previous fold point — the pattern set is stale but intact,
  // and the next AppendAndRemine catches up. Surface the stop.
  if (incremental.IsStop()) return incremental;

  // Degrade: drop maintenance state and re-mine the grown table from
  // scratch. Never silently wrong — the fallback produces exactly what a
  // cold mine of the current table produces.
  maintainer_.reset();
  if (use_cache) pattern_cache_->Erase(old_fingerprint, config_digest);
  {
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.maint_full_remines += 1;
  }
  return MinePatterns(miner_name);
}

Status Engine::MaintainIncrementally(uint64_t config_digest) {
  StopToken stop = mining_config_.MakeStopToken();
  int64_t revalidated_before = 0;
  int64_t added_before = 0;
  int64_t replaced_before = 0;
  if (maintainer_ != nullptr && maintainer_->config_digest() == config_digest) {
    const MaintenanceStats& before = maintainer_->stats();
    revalidated_before = before.candidates_revalidated;
    added_before = before.locals_added;
    replaced_before = before.locals_replaced;
    CAPE_RETURN_IF_ERROR(maintainer_->Absorb(&stop));
  } else {
    maintainer_.reset();
    CAPE_ASSIGN_OR_RETURN(maintainer_,
                          PatternMaintainer::Build(table_, mining_config_, &stop));
  }
  patterns_ = std::make_shared<const PatternSet>(maintainer_->Finalize());

  const MaintenanceStats& after = maintainer_->stats();
  const int64_t revalidated = after.candidates_revalidated - revalidated_before;
  const int64_t touched_locals = (after.locals_added - added_before) +
                                 (after.locals_replaced - replaced_before);
  int64_t retained = patterns_->NumLocalPatterns() - touched_locals;
  if (retained < 0) retained = 0;
  MutexLock lock(stats_cell_->mu);
  RunStats& stats = stats_cell_->stats;
  stats.maint_patterns_revalidated += revalidated;
  stats.maint_patterns_retained += retained;
  stats.patterns_mined = static_cast<int64_t>(patterns_->size());
  return Status::OK();
}

Status Engine::SavePatterns(const std::string& path) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSet(*patterns_, schema(), path);
}

Status Engine::SavePatternsBinary(const std::string& path) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSetBinary(*patterns_, schema(), path,
                              MiningConfigDigest(mining_config_));
}

Status Engine::LoadPatterns(const std::string& path) {
  PatternStoreMeta meta;
  CAPE_ASSIGN_OR_RETURN(PatternSet loaded, LoadPatternSet(path, schema(), &meta));
  patterns_ = std::make_shared<const PatternSet>(std::move(loaded));
  // A binary store records which mining config produced it; use that to
  // warm the serving cache so later MinePatterns calls hit without mining.
  if (pattern_cache_ != nullptr && meta.format_version == kPatternStoreFormatVersion &&
      meta.mining_config_digest != 0) {
    pattern_cache_->Insert(table_->Fingerprint(), meta.mining_config_digest, patterns_,
                           table_->schema());
  }
  return Status::OK();
}

Result<UserQuestion> Engine::MakeQuestion(const std::vector<std::string>& group_by,
                                          const std::vector<Value>& group_values,
                                          AggFunc agg, const std::string& agg_attr,
                                          Direction dir) const {
  return MakeUserQuestion(table_, group_by, group_values, agg, agg_attr, dir);
}

Result<ExplainResult> Engine::Explain(const UserQuestion& question, bool optimized) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  auto generator = optimized ? MakeOptimizedExplainer() : MakeNaiveExplainer();
  CAPE_ASSIGN_OR_RETURN(
      ExplainResult result,
      generator->Explain(question, *patterns_, distance_model_, explain_config_));
  {
    MutexLock lock(stats_cell_->mu);
    RunStats& stats = stats_cell_->stats;
    stats.explain_ns = result.profile.total_ns;
    stats.explain_cpu_ns = result.profile.cpu_ns;
    stats.explain_pairs_considered = result.profile.num_refinement_pairs;
    stats.explain_pairs_pruned = result.profile.num_pairs_pruned;
    stats.explain_tuples_checked = result.profile.num_tuples_checked;
    stats.explain_partial = result.partial;
    stats.explain_stop_reason = result.stop_reason;
    stats.explain_stopped_stage = result.stopped_stage;
  }
  return result;
}

Result<ExplainResult> Engine::ExplainBaseline(const UserQuestion& question) const {
  return BaselineExplain(question, distance_model_, explain_config_);
}

std::string Engine::RenderExplanations(const std::vector<Explanation>& explanations) const {
  return RenderExplanationTable(explanations, schema());
}

Result<ExplainSession> Engine::MakeExplainSession() const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return ExplainSession(patterns_, distance_model_, explain_config_);
}

std::string Engine::RenderPatterns(size_t max_patterns) const {
  if (patterns_ == nullptr) return "(no patterns mined)\n";
  return patterns_->ToString(schema(), max_patterns);
}

}  // namespace cape
