#include "core/engine.h"

#include "common/failpoint.h"
#include "common/macros.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"

namespace cape {

Engine::Engine(TablePtr table)
    : table_(std::move(table)),
      distance_model_(DistanceModel::MakeDefault(*table_)),
      stats_cell_(std::make_unique<StatsCell>()) {}

Result<Engine> Engine::FromTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("table must not be null");
  CAPE_RETURN_IF_ERROR(table->Validate());
  if (table->num_columns() > 64) {
    return Status::InvalidArgument("relations wider than 64 attributes are not supported");
  }
  return Engine(std::move(table));
}

Result<Engine> Engine::FromCsvFile(const std::string& path, const CsvReadOptions& options,
                                   CsvParseReport* report) {
  CsvParseReport local_report;
  if (report == nullptr) report = &local_report;
  CAPE_ASSIGN_OR_RETURN(TablePtr table, ReadCsvFile(path, options, report));
  CAPE_ASSIGN_OR_RETURN(Engine engine, FromTable(std::move(table)));
  {
    MutexLock lock(engine.stats_cell_->mu);
    engine.stats_cell_->stats.rows_loaded = report->num_rows_loaded;
    engine.stats_cell_->stats.rows_quarantined = report->num_rows_quarantined;
  }
  return engine;
}

Status Engine::MinePatterns(const std::string& miner_name) {
  uint64_t fingerprint = 0;
  uint64_t config_digest = 0;
  if (pattern_cache_ != nullptr) {
    fingerprint = table_->Fingerprint();
    config_digest = MiningConfigDigest(mining_config_);
    if (auto cached = pattern_cache_->Lookup(fingerprint, config_digest)) {
      // Serving-cache hit: zero mining work. mine_ns == 0 is the observable
      // contract benches and tests pin (DESIGN.md §11).
      patterns_ = std::move(cached);
      mining_profile_ = MiningProfile{};
      MutexLock lock(stats_cell_->mu);
      RunStats& stats = stats_cell_->stats;
      stats.mine_ns = 0;
      stats.mine_cpu_ns = 0;
      stats.mine_rows_scanned = 0;
      stats.mine_candidates = 0;
      stats.mine_candidates_skipped_fd = 0;
      stats.patterns_mined = static_cast<int64_t>(patterns_->size());
      stats.mine_truncated = false;
      stats.mine_stop_reason = StopReason::kNone;
      stats.cache_hits += 1;
      return Status::OK();
    }
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.cache_misses += 1;
  }
  CAPE_ASSIGN_OR_RETURN(auto miner, MakeMinerByName(miner_name));
  CAPE_ASSIGN_OR_RETURN(MiningResult result, miner->Mine(*table_, mining_config_));
  patterns_ = std::make_shared<const PatternSet>(std::move(result.patterns));
  mining_profile_ = result.profile;
  {
    MutexLock lock(stats_cell_->mu);
    RunStats& stats = stats_cell_->stats;
    stats.mine_ns = result.profile.total_ns;
    stats.mine_cpu_ns = result.profile.cpu_ns;
    stats.mine_rows_scanned = result.profile.num_rows_scanned;
    stats.mine_candidates = result.profile.num_candidates;
    stats.mine_candidates_skipped_fd = result.profile.num_candidates_skipped_fd;
    stats.patterns_mined = static_cast<int64_t>(patterns_->size());
    stats.mine_truncated = result.truncated;
    stats.mine_stop_reason = result.stop_reason;
  }
  // Truncated results hold a subset of the full pattern set; caching one
  // would serve incomplete explanations to every later request. Cache
  // admission itself is best-effort: a fault here (simulated concurrent
  // eviction / admission race) keeps the freshly mined result and simply
  // leaves the cache cold — the request still succeeds.
  if (pattern_cache_ != nullptr && !result.truncated &&
      !CAPE_FAILPOINT_FIRES("engine.cache_admit")) {
    const int64_t evictions =
        pattern_cache_->Insert(fingerprint, config_digest, patterns_, table_->schema());
    MutexLock lock(stats_cell_->mu);
    stats_cell_->stats.cache_evictions += evictions;
  }
  return Status::OK();
}

Status Engine::SavePatterns(const std::string& path) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSet(*patterns_, schema(), path);
}

Status Engine::SavePatternsBinary(const std::string& path) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSetBinary(*patterns_, schema(), path,
                              MiningConfigDigest(mining_config_));
}

Status Engine::LoadPatterns(const std::string& path) {
  PatternStoreMeta meta;
  CAPE_ASSIGN_OR_RETURN(PatternSet loaded, LoadPatternSet(path, schema(), &meta));
  patterns_ = std::make_shared<const PatternSet>(std::move(loaded));
  // A binary store records which mining config produced it; use that to
  // warm the serving cache so later MinePatterns calls hit without mining.
  if (pattern_cache_ != nullptr && meta.format_version == kPatternStoreFormatVersion &&
      meta.mining_config_digest != 0) {
    pattern_cache_->Insert(table_->Fingerprint(), meta.mining_config_digest, patterns_,
                           table_->schema());
  }
  return Status::OK();
}

Result<UserQuestion> Engine::MakeQuestion(const std::vector<std::string>& group_by,
                                          const std::vector<Value>& group_values,
                                          AggFunc agg, const std::string& agg_attr,
                                          Direction dir) const {
  return MakeUserQuestion(table_, group_by, group_values, agg, agg_attr, dir);
}

Result<ExplainResult> Engine::Explain(const UserQuestion& question, bool optimized) const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  auto generator = optimized ? MakeOptimizedExplainer() : MakeNaiveExplainer();
  CAPE_ASSIGN_OR_RETURN(
      ExplainResult result,
      generator->Explain(question, *patterns_, distance_model_, explain_config_));
  {
    MutexLock lock(stats_cell_->mu);
    RunStats& stats = stats_cell_->stats;
    stats.explain_ns = result.profile.total_ns;
    stats.explain_cpu_ns = result.profile.cpu_ns;
    stats.explain_pairs_considered = result.profile.num_refinement_pairs;
    stats.explain_pairs_pruned = result.profile.num_pairs_pruned;
    stats.explain_tuples_checked = result.profile.num_tuples_checked;
    stats.explain_partial = result.partial;
    stats.explain_stop_reason = result.stop_reason;
    stats.explain_stopped_stage = result.stopped_stage;
  }
  return result;
}

Result<ExplainResult> Engine::ExplainBaseline(const UserQuestion& question) const {
  return BaselineExplain(question, distance_model_, explain_config_);
}

std::string Engine::RenderExplanations(const std::vector<Explanation>& explanations) const {
  return RenderExplanationTable(explanations, schema());
}

Result<ExplainSession> Engine::MakeExplainSession() const {
  if (patterns_ == nullptr) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return ExplainSession(patterns_, distance_model_, explain_config_);
}

std::string Engine::RenderPatterns(size_t max_patterns) const {
  if (patterns_ == nullptr) return "(no patterns mined)\n";
  return patterns_->ToString(schema(), max_patterns);
}

}  // namespace cape
