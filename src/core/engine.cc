#include "core/engine.h"

#include "common/macros.h"
#include "pattern/pattern_io.h"
#include "relational/csv.h"

namespace cape {

Engine::Engine(TablePtr table)
    : table_(std::move(table)), distance_model_(DistanceModel::MakeDefault(*table_)) {}

Result<Engine> Engine::FromTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("table must not be null");
  CAPE_RETURN_IF_ERROR(table->Validate());
  if (table->num_columns() > 64) {
    return Status::InvalidArgument("relations wider than 64 attributes are not supported");
  }
  return Engine(std::move(table));
}

Result<Engine> Engine::FromCsvFile(const std::string& path) {
  CAPE_ASSIGN_OR_RETURN(TablePtr table, ReadCsvFile(path));
  return FromTable(std::move(table));
}

Status Engine::MinePatterns(const std::string& miner_name) {
  CAPE_ASSIGN_OR_RETURN(auto miner, MakeMinerByName(miner_name));
  CAPE_ASSIGN_OR_RETURN(MiningResult result, miner->Mine(*table_, mining_config_));
  patterns_ = std::move(result.patterns);
  mining_profile_ = result.profile;
  return Status::OK();
}

Status Engine::SavePatterns(const std::string& path) const {
  if (!patterns_.has_value()) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  return SavePatternSet(*patterns_, schema(), path);
}

Status Engine::LoadPatterns(const std::string& path) {
  CAPE_ASSIGN_OR_RETURN(PatternSet loaded, LoadPatternSet(path, schema()));
  patterns_ = std::move(loaded);
  return Status::OK();
}

Result<UserQuestion> Engine::MakeQuestion(const std::vector<std::string>& group_by,
                                          const std::vector<Value>& group_values,
                                          AggFunc agg, const std::string& agg_attr,
                                          Direction dir) const {
  return MakeUserQuestion(table_, group_by, group_values, agg, agg_attr, dir);
}

Result<ExplainResult> Engine::Explain(const UserQuestion& question, bool optimized) const {
  if (!patterns_.has_value()) {
    return Status::InvalidArgument("no patterns mined; call MinePatterns() first");
  }
  auto generator = optimized ? MakeOptimizedExplainer() : MakeNaiveExplainer();
  return generator->Explain(question, *patterns_, distance_model_, explain_config_);
}

Result<ExplainResult> Engine::ExplainBaseline(const UserQuestion& question) const {
  return BaselineExplain(question, distance_model_, explain_config_);
}

std::string Engine::RenderExplanations(const std::vector<Explanation>& explanations) const {
  return RenderExplanationTable(explanations, schema());
}

std::string Engine::RenderPatterns(size_t max_patterns) const {
  if (!patterns_.has_value()) return "(no patterns mined)\n";
  return patterns_->ToString(schema(), max_patterns);
}

}  // namespace cape
