#ifndef CAPE_CORE_PATTERN_CACHE_H_
#define CAPE_CORE_PATTERN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "pattern/pattern_set.h"
#include "relational/schema.h"

namespace cape {

/// Cross-question (and cross-engine) serving cache for mined pattern sets.
///
/// CAPE's offline/online split (Section 5: mine ARPs once, answer many user
/// questions) only amortizes if the mined set is actually reused. Entries are
/// keyed by (Table::Fingerprint, MiningConfigDigest): the fingerprint covers
/// every content byte of the relation, so mutating the data invalidates by
/// construction, and the config digest covers every result-affecting mining
/// knob, so performance knobs (thread count, deadlines) share entries.
///
/// Thread-safe; all operations take one internal mutex. Entries are
/// shared_ptr<const PatternSet> so concurrent readers serve from the same
/// immutable set without copies. Eviction is LRU under a byte budget
/// (estimated in-memory footprint); the most recent insert is always
/// retained even when it alone exceeds the budget, so a large mining result
/// is never silently dropped on arrival.
///
/// Truncation rule: callers must not insert deadline-truncated or otherwise
/// partial mining results — the Engine enforces this (DESIGN.md §11).
class PatternCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    uint64_t bytes_used = 0;
    uint64_t byte_budget = 0;
  };

  static constexpr uint64_t kDefaultByteBudget = 64ull << 20;  // 64 MiB

  explicit PatternCache(uint64_t byte_budget = kDefaultByteBudget);

  /// Returns the cached set (marking it most-recently-used) or nullptr.
  std::shared_ptr<const PatternSet> Lookup(uint64_t table_fingerprint,
                                           uint64_t mining_config_digest)
      CAPE_EXCLUDES(mu_);

  /// Inserts (or replaces) an entry and evicts LRU entries until the byte
  /// budget holds again. `schema` is retained so the entry can be persisted
  /// to disk without external context. Returns the number of evictions this
  /// insert caused.
  int64_t Insert(uint64_t table_fingerprint, uint64_t mining_config_digest,
                 std::shared_ptr<const PatternSet> patterns,
                 std::shared_ptr<const Schema> schema) CAPE_EXCLUDES(mu_);

  /// Atomic cache move for append workloads: drops the entry keyed by
  /// (old_fingerprint, digest) — the pre-append snapshot, now unreachable
  /// since the table content changed — and inserts `patterns` under
  /// (new_fingerprint, digest), all under one lock so no reader can observe
  /// the stale and fresh entries coexisting. Returns evictions caused.
  int64_t Upgrade(uint64_t old_fingerprint, uint64_t new_fingerprint,
                  uint64_t mining_config_digest,
                  std::shared_ptr<const PatternSet> patterns,
                  std::shared_ptr<const Schema> schema) CAPE_EXCLUDES(mu_);

  /// Drops one entry if present (e.g. a snapshot invalidated without a
  /// replacement).
  void Erase(uint64_t table_fingerprint, uint64_t mining_config_digest)
      CAPE_EXCLUDES(mu_);

  /// Writes every entry as a self-describing binary store
  /// (`arp-<fingerprint>-<digest>.arpb`) inside `dir`, creating it if
  /// needed.
  Status SaveToDirectory(const std::string& dir) const CAPE_EXCLUDES(mu_);

  /// Loads the stores in `dir` whose filename fingerprint matches
  /// `table_fingerprint` and whose embedded schema matches `schema`,
  /// inserting them under their recorded mining-config digest. Returns the
  /// number of entries loaded. Files that fail to parse are skipped (a
  /// corrupt store must not poison the cache).
  Result<int> LoadFromDirectory(const std::string& dir, const Schema& schema,
                                uint64_t table_fingerprint) CAPE_EXCLUDES(mu_);

  Stats stats() const CAPE_EXCLUDES(mu_);

  void Clear() CAPE_EXCLUDES(mu_);

 private:
  struct Key {
    uint64_t fingerprint = 0;
    uint64_t digest = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const PatternSet> patterns;
    std::shared_ptr<const Schema> schema;
    uint64_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  /// Evicts LRU entries (never the most recent one) until within budget.
  /// Returns the number of evictions.
  int64_t EvictToBudgetLocked() CAPE_REQUIRES(mu_);

  /// Removes `key` if present; true when an entry was dropped.
  bool EraseLocked(const Key& key) CAPE_REQUIRES(mu_);

  mutable Mutex mu_;
  const uint64_t byte_budget_;  // immutable after construction — not guarded
  uint64_t bytes_used_ CAPE_GUARDED_BY(mu_) = 0;
  int64_t hits_ CAPE_GUARDED_BY(mu_) = 0;
  int64_t misses_ CAPE_GUARDED_BY(mu_) = 0;
  int64_t evictions_ CAPE_GUARDED_BY(mu_) = 0;
  std::list<Key> lru_ CAPE_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<Key, Entry, KeyHash> entries_ CAPE_GUARDED_BY(mu_);
};

/// Estimated resident size of a pattern set (used for the cache budget).
uint64_t EstimatePatternSetBytes(const PatternSet& patterns);

}  // namespace cape

#endif  // CAPE_CORE_PATTERN_CACHE_H_
