"""Seeded-violation fixtures for `tools/analyzer --self-test`.

Mirrors tools/lint.py's self-test: a set of in-memory fixture files — each
seeding one violation, one clean twin of the same shape, or one suppression
— is parsed and run through the real checks, and the produced findings must
match the expectation list exactly. Every check has at least one seeded
violation (including a lock-order *cycle* and an uncancellable data-bounded
loop), one clean fixture proving the check does not overfire on the
sanctioned idiom (strided stop check, collect-then-sort, paged-first
dispatch, closure-deferred IO), and the suppression syntax is exercised in
both its same-line and next-line forms.

Expectations name a unique line *substring* instead of a line number, so
editing a fixture does not silently shift an assertion onto the wrong line.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from analyzer import checks, cxxast  # noqa: E402

# ----------------------------------------------------------------------------
# Fixtures. Paths choose which checks apply (cancellation only fires under
# its request-path directories, dispatch only under src/relational/).

FIXTURES = {
    # -- cancellation ------------------------------------------------------
    "src/pattern/st_cancel.cc": """\
Status ScanAll(const Table& t, StopToken* stop) {
  for (int64_t row = 0; row < t.num_rows(); ++row) {  // seeded: unchecked
    Use(row);
  }
  return Status::OK();
}

Status ScanChecked(const Table& t, StopToken* stop) {
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    Use(row);
  }
  return Status::OK();
}

Status ScanViaKernel(const Table& t, StopToken* stop) {
  for (int64_t row = 0; row < t.num_rows(); row += kStopCheckStride) {
    CAPE_RETURN_IF_ERROR(CheckedKernel(t, stop));
  }
  return Status::OK();
}

Status ScanSuppressed(const Table& t, const std::vector<Row>& rows) {
  // analyzer:allow-next-line(cancellation) self-test: justified escape
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    Use(row);
  }
  for (const Row& r : rows) {  // analyzer:allow(cancellation) same-line form
    Use(r);
  }
  return Status::OK();
}

Status ScanRows(const std::vector<Row>& rows) {
  for (const Row& r : rows) {  // seeded: unchecked range-for
    Use(r);
  }
  return Status::OK();
}
""",
    "src/pattern/st_cancel_helper.cc": """\
Status CheckedKernel(const Table& t, StopToken* stop) {
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    if ((row & (kStopCheckStride - 1)) == 0) CAPE_RETURN_IF_STOPPED_BLOCK(stop);
    Use(row);
  }
  return Status::OK();
}
""",
    # -- lock-order: cycle -------------------------------------------------
    "src/core/st_lock_cycle.cc": """\
class Pair {
 public:
  void One() {
    MutexLock l(mu_a);
    TakeB();
  }
  void TakeB() { MutexLock l(mu_b); }
  void Two() {
    MutexLock l(mu_b);
    TakeA();  // seeded: closes the mu_a -> mu_b -> mu_a cycle
  }
  void TakeA() { MutexLock l(mu_a); }

 private:
  Mutex mu_a;
  Mutex mu_b;
};
""",
    # -- lock-order: blocking calls under a lock ---------------------------
    "src/core/st_lock_block.cc": """\
void FlushUnderLock(State* s) {
  MutexLock l(s->mu);
  fwrite(s->buf, 1, s->n, s->file);  // seeded: IO under lock
}

void WaitForWorkers(State* s) {
  MutexLock l(s->mu);
  s->pool->ParallelFor(s->n, s->opts, s->body);  // seeded: pool wait
}

void WaitForeign(Rep* r) {
  MutexLock l(r->mu);
  r->cv_.Wait(&r->other_mu);  // seeded: foreign-mutex wait
}

void WaitOwn(Rep* r) {
  MutexLock l(r->mu);
  r->cv_.Wait(&r->mu);
}

void KickWorker(State* s) {
  MutexLock l(s->mu);
  s->pool->Submit([s] { WriteSideFile(s); });
}

Status WriteSideFile(State* s) {
  fwrite(s->buf, 1, s->n, s->file);
  return Status::OK();
}

class Pinned {
 public:
  void HelperLocked() CAPE_REQUIRES(mu_) {
    fwrite(nullptr, 1, 1, nullptr);  // seeded: IO while mu_ held
  }

 private:
  Mutex mu_;
};
""",
    # -- toggle-dispatch ---------------------------------------------------
    "src/relational/st_dispatch.cc": """\
Result<TablePtr> FilterScan(const Table& t) {  // seeded: no paged handling
  if (VectorizedKernelsEnabled()) {
    return VecPath(t);
  }
  return LegacyPath(t);
}

Result<TablePtr> GroupScan(const Table& t) {
  if (VectorizedKernelsEnabled()) return VecGroup(t);  // seeded: vec first
  if (t.UsesPagedScan()) return PagedGroup(t);
  return LegacyGroup(t);
}

Result<TablePtr> SortScan(const Table& t) {
  if (t.UsesPagedScan()) return Status::NotImplemented("paged sort");
  if (VectorizedKernelsEnabled()) return VecSort(t);
  return LegacySort(t);
}

Result<TablePtr> ProjectScan(const Table& t) {
  if (VectorizedKernelsEnabled()) return SortScan(t);
  return SortScan(t);
}
""",
    # -- unordered-iteration ----------------------------------------------
    "src/explain/st_unordered.cc": """\
void EmitCounts(std::vector<std::string>* out) {
  std::unordered_map<std::string, int> counts;
  for (const auto& [k, v] : counts) {  // seeded: hash order reaches output
    out->push_back(k);
  }
}

void EmitSorted(std::vector<std::string>* out) {
  std::unordered_map<std::string, int> counts;
  std::vector<std::string> keys;
  for (const auto& [k, v] : counts) {
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& k : keys) out->push_back(k);
}

int CountSeen() {
  std::unordered_set<int> seen;
  int total = 0;
  for (int v : seen) {  // analyzer:allow(unordered-iteration) sum is order-free
    total += v;
  }
  return total;
}
""",
    # The local `seen` below is a vector; the unordered `seen` in
    # st_unordered.cc must not taint it across files.
    "src/fd/st_shadow.cc": """\
int SumLocal() {
  std::vector<int> seen(8, 1);
  int total = 0;
  for (int v : seen) {
    total += v;
  }
  return total;
}
""",
    # Unordered members declared in headers are visible to every file.
    "src/core/st_index.h": """\
class IndexHolder {
 public:
  std::unordered_map<std::string, int> index_;
};
""",
    "src/core/st_index.cc": """\
std::string DumpIndex(const IndexHolder& h) {
  std::string out;
  for (const auto& [k, v] : h.index_) {  // seeded: member via header
    out += k;
  }
  return out;
}
""",
}

# (file, unique line substring, check) — resolved to line numbers below.
EXPECTED = [
    ("src/pattern/st_cancel.cc", "// seeded: unchecked", "cancellation"),
    ("src/pattern/st_cancel.cc", "// seeded: unchecked range-for", "cancellation"),
    ("src/core/st_lock_cycle.cc", "// seeded: closes the", "lock-order"),
    ("src/core/st_lock_block.cc", "// seeded: IO under lock", "lock-order"),
    ("src/core/st_lock_block.cc", "// seeded: pool wait", "lock-order"),
    ("src/core/st_lock_block.cc", "// seeded: foreign-mutex wait", "lock-order"),
    ("src/core/st_lock_block.cc", "// seeded: IO while mu_ held", "lock-order"),
    ("src/relational/st_dispatch.cc", "// seeded: no paged handling",
     "toggle-dispatch"),
    ("src/relational/st_dispatch.cc", "// seeded: vec first", "toggle-dispatch"),
    ("src/explain/st_unordered.cc", "// seeded: hash order reaches output",
     "unordered-iteration"),
    ("src/core/st_index.cc", "// seeded: member via header",
     "unordered-iteration"),
]


def _line_of(rel, needle):
    for i, line in enumerate(FIXTURES[rel].split("\n")):
        if needle in line:
            return i + 1
    raise AssertionError(f"self-test fixture {rel} lost its marker {needle!r}")


def self_test():
    asts = [cxxast.FileAst("<selftest>/" + rel, rel, text)
            for rel, text in sorted(FIXTURES.items())]
    findings = checks.run_checks(asts)
    got = {(f.path, f.line, f.check) for f in findings}
    want = {(rel, _line_of(rel, needle), check)
            for rel, needle, check in EXPECTED}

    ok = True
    for key in sorted(want - got):
        ok = False
        print(f"self-test: MISSED expected finding {key[0]}:{key[1]} [{key[2]}]")
    for key in sorted(got - want):
        ok = False
        f = next(x for x in findings if (x.path, x.line, x.check) == key)
        print(f"self-test: UNEXPECTED finding {f}")
    if not ok:
        print(f"analyzer --self-test: FAILED "
              f"({len(want)} expected, {len(got)} produced)")
        return 1
    print(f"analyzer --self-test: OK ({len(FIXTURES)} fixtures, "
          f"{len(want)} seeded violations caught, clean twins quiet)")
    return 0
