# tools/analyzer — AST-grounded invariant analyzer for the CAPE tree.
# See __main__.py for the CLI and DESIGN.md §17 for the checks.
