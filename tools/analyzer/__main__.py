#!/usr/bin/env python3
"""CAPE invariant analyzer: AST-grounded checks the regex lint cannot do.

tools/lint.py matches single lines; this tool parses each translation unit
into a structural AST (functions, loop nests, lock scopes, call edges — see
cxxast.py) and closes facts over the whole-program call graph, so it can
answer questions like "does every data-bounded loop reach a stop-token
check through some call chain" or "is the static lock-acquisition graph
acyclic". Checks and their rationale: checks.py and DESIGN.md §17.

The translation-unit list comes from compile_commands.json (export is on by
default in CMakeLists.txt); headers under src/ are added so member
declarations and CAPE_REQUIRES annotations are visible. Without a build
directory, `--root`-relative discovery scans src/ directly — same files,
no compiler needed.

Suppression shares tools/lint.py's syntax via tools/srcscan.py: append
`// analyzer:allow(<check>) <why>` to the flagged line, or put
`// analyzer:allow-next-line(<check>) <why>` on the line directly above
when the flagged line has no room for a trailing comment. A baseline file
(`--baseline`) accepts lines of `<check> <path> <why>` for whole-file
grandfathering; the shipped tree carries no baseline — zero findings is the
invariant CI enforces.

Usage:
  python3 tools/analyzer                               # discover src/ from repo root
  python3 tools/analyzer --compile-commands build/compile_commands.json
  python3 tools/analyzer --check cancellation          # one check only
  python3 tools/analyzer --self-test                   # seeded-violation fixtures
  python3 tools/analyzer --list                        # parse report (calibration)
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from analyzer import checks, cxxast  # noqa: E402
from analyzer.selftest import self_test  # noqa: E402


def tu_files_from_compile_commands(path, root):
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    files = set()
    for e in entries:
        src = e.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(e.get("directory", ""), src)
        src = os.path.normpath(src)
        rel = os.path.relpath(src, root)
        if rel.startswith("src" + os.sep) and os.path.isfile(src):
            files.add(src)
    return sorted(files)


def headers_under_src(root):
    return [p for p in cxxast.srcscan.collect_files(root, topdirs=("src",))
            if p.endswith((".h", ".hpp"))]


def load_baseline(path):
    accepted = set()
    if not path:
        return accepted
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise SystemExit(
                    f"baseline '{path}': malformed line '{line}' — expected "
                    "'<check> <path> <why>' (the justification is required)")
            accepted.add((parts[0], parts[1]))
    return accepted


def main():
    parser = argparse.ArgumentParser(
        prog="tools/analyzer", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json giving the TU list "
                             "(default: <root>/build/compile_commands.json "
                             "when present, else src/ discovery)")
    parser.add_argument("--check", action="append", choices=checks.ALL_CHECKS,
                        help="run only the named check(s)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file of accepted findings "
                             "('<check> <path> <why>' per line)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation fixtures and exit")
    parser.add_argument("--list", action="store_true",
                        help="dump the parse (functions/loops/locks) instead "
                             "of findings — calibration aid")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = os.path.abspath(
        args.root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                     os.pardir))

    cc = args.compile_commands
    if cc is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        cc = candidate if os.path.isfile(candidate) else None

    if cc is not None:
        sources = tu_files_from_compile_commands(cc, root)
        if not sources:
            print(f"analyzer: no src/ translation units in {cc}", file=sys.stderr)
            return 2
        origin = f"{len(sources)} TUs from {os.path.relpath(cc, root)}"
    else:
        sources = [p for p in cxxast.srcscan.collect_files(root, topdirs=("src",))
                   if p.endswith((".cc", ".cpp"))]
        origin = f"{len(sources)} sources from src/ discovery"
    files = sorted(set(sources) | set(headers_under_src(root)))

    file_asts = [cxxast.parse_file(p, root) for p in files]

    if args.list:
        for fa in file_asts:
            print(f"== {fa.rel}")
            for fn in fa.functions:
                print(f"  fn {fn.name} @{fa.line_at(fn.header_start)} "
                      f"locks={[s.qualified for s in fn.lock_scopes]}")
                for loop in fn.loops:
                    print(f"    {loop.kind} @{fa.line_at(loop.start)}: "
                          f"{' '.join(loop.header_text.split())[:90]}")
        return 0

    findings = checks.run_checks(file_asts, enabled=args.check)
    baseline = load_baseline(args.baseline)
    findings = [f for f in findings if (f.check, f.path) not in baseline]

    for f in findings:
        print(f)
    if findings:
        print(f"\nanalyzer: {len(findings)} finding(s) over {origin} "
              f"(+{len(files) - len(sources)} headers). Fix them or, where "
              "the pattern is deliberate, append "
              "`// analyzer:allow(<check>) <why>`.", file=sys.stderr)
        return 1
    print(f"analyzer: OK ({origin}, +{len(files) - len(sources)} headers, "
          f"checks: {', '.join(args.check or checks.ALL_CHECKS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
