"""Structural C++ AST for the CAPE invariant analyzer.

The analyzer needs a real syntactic model of each translation unit —
functions with their bodies, the loop nests inside them, every call
expression, and the exact region over which each RAII lock is held. A full
Clang AST would be the luxurious way to get that, but this repo must analyze
itself on boxes that carry only gcc (the CI image installs clang for the
CAPE_ANALYZE job, the dev container does not), so the default frontend is a
built-in structural parser over the comment/string-stripped text
(tools/srcscan.py — the same stripping the lint shares). It is not a full
C++ parser; it is a *recognizer* for the constructs the checks reason
about, built on balanced-delimiter scanning rather than line regexes:

  * function definitions: header, qualifier text (where CAPE_REQUIRES /
    CAPE_EXCLUDES annotations live), and the exact body span;
  * loops (`for` / range-`for` / `while` / `do`), each with header text and
    body span, nesting derivable from span containment;
  * call expressions with callee name, object-expression prefix, and
    argument text — the edges of the call graph the checks walk;
  * lock scopes: each `MutexLock l(mu);` declaration mapped to the region
    from the declaration to the end of its enclosing block, plus whole-body
    scopes implied by CAPE_REQUIRES(mu) on the function;
  * declarations of unordered containers (std::unordered_map/set and
    one-level `using` aliases of them), tree-wide, for the determinism
    check.

Spans are offsets into the stripped text, whose newlines match the original
file, so every reported position converts to a 1-based line number with
srcscan.line_of_offset.

Known, deliberate limits (documented in DESIGN.md §17): preprocessor
conditionals are not evaluated (both arms are parsed), templates are parsed
textually, and overloads sharing a base name merge into one call-graph node
(properties union — conservative for "does this call chain check the stop
token", which is the direction the checks care about).
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import srcscan  # noqa: E402

KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "decltype", "new", "delete", "do", "else", "case", "default", "goto",
    "throw", "static_assert", "alignas", "co_await", "co_return", "co_yield",
}

TYPE_INTRO = {"class", "struct", "enum", "union", "namespace", "using",
              "typedef", "template", "concept", "requires"}

IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class Loop:
    __slots__ = ("kind", "start", "header_start", "header_end", "body_start",
                 "body_end", "header_text")

    def __init__(self, kind, start, header_start, header_end, body_start, body_end,
                 header_text):
        self.kind = kind  # 'for' | 'range-for' | 'while' | 'do'
        self.start = start
        self.header_start = header_start
        self.header_end = header_end
        self.body_start = body_start
        self.body_end = body_end
        self.header_text = header_text

    def contains(self, offset):
        return self.body_start <= offset < self.body_end

    def span_contains(self, other):
        return self.body_start <= other.body_start and other.body_end <= self.body_end


class Call:
    __slots__ = ("name", "expr", "args_text", "start")

    def __init__(self, name, expr, args_text, start):
        self.name = name        # callee base identifier, e.g. "Submit"
        self.expr = expr        # full prefix, e.g. "pool_->Submit"
        self.args_text = args_text
        self.start = start


class LockScope:
    __slots__ = ("mutex_expr", "qualified", "start", "end", "decl_line_offset")

    def __init__(self, mutex_expr, qualified, start, end, decl_line_offset):
        self.mutex_expr = mutex_expr    # normalized, e.g. "mu_" or "state.mu"
        self.qualified = qualified      # "Class::mu_" (or "::mu_" at file scope)
        self.start = start              # first offset at which the lock is held
        self.end = end                  # end of the enclosing block
        self.decl_line_offset = decl_line_offset

    def holds(self, offset):
        return self.start <= offset < self.end


class Function:
    __slots__ = ("name", "base_name", "cls", "params_text", "quals_text",
                 "header_start", "body_start", "body_end", "loops", "calls",
                 "lock_scopes", "lambda_spans", "file")

    def __init__(self, name, cls, params_text, quals_text, header_start,
                 body_start, body_end):
        self.name = name                      # as written, may contain ::
        self.base_name = name.rsplit("::", 1)[-1]
        self.cls = cls                        # owning class name or ""
        self.params_text = params_text
        self.quals_text = quals_text
        self.header_start = header_start
        self.body_start = body_start
        self.body_end = body_end
        self.loops = []
        self.calls = []
        self.lock_scopes = []
        self.lambda_spans = []                # (body_start, body_end) pairs
        self.file = None                      # set by FileAst

    def held_locks_at(self, offset):
        return [s for s in self.lock_scopes if s.holds(offset)]

    def in_lambda(self, offset):
        """True when `offset` sits inside a lambda body. Code there runs when
        the closure is *invoked*, not where it is written — lock scopes and
        IO/acquire propagation must not attribute it to the lexical site."""
        return any(start <= offset < end for start, end in self.lambda_spans)


class FileAst:
    """Parsed model of one source file."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        stripped = srcscan.strip_comments_and_strings(text)
        self.stripped = _mask_preprocessor(stripped)
        self.classes = []          # (name, body_start, body_end)
        self.functions = []
        self.unordered_vars = {}   # var name -> line
        self.unordered_aliases = set()
        self._parse()

    def line_at(self, offset):
        return srcscan.line_of_offset(self.stripped, offset)

    # ------------------------------------------------------------------
    def _parse(self):
        self._find_classes()
        self._find_functions()
        for fn in self.functions:
            fn.file = self
            self._find_loops(fn)
            self._find_calls(fn)
            self._find_lock_scopes(fn)
            self._find_lambda_spans(fn)
        self._find_unordered_decls()

    # ------------------------------------------------------------------
    CLASS_RE = re.compile(r"\b(class|struct)\s+")

    def _find_classes(self):
        s = self.stripped
        for m in self.CLASS_RE.finditer(s):
            i = m.end()
            # Skip attribute macros with arguments (CAPE_CAPABILITY(...)) and
            # find the class name: the last identifier before ':' / '{' / ';'.
            name = None
            while i < len(s):
                c = s[i]
                if c in " \t\n":
                    i += 1
                elif c == "(":
                    i = srcscan.skip_balanced(s, i, "(", ")")
                elif c in "{;:<," or c == ")":
                    break
                else:
                    w = IDENT_RE.match(s, i)
                    if not w:
                        break
                    name = w.group(0)
                    i = w.end()
            if name is None:
                continue
            # Advance over a base-clause to the opening brace, if any.
            j = i
            while j < len(s) and s[j] not in "{;":
                if s[j] == "(":
                    j = srcscan.skip_balanced(s, j, "(", ")")
                else:
                    j += 1
            if j < len(s) and s[j] == "{":
                self.classes.append((name, j, srcscan.skip_balanced(s, j, "{", "}")))

    def innermost_class(self, offset):
        best = ""
        best_len = None
        for name, start, end in self.classes:
            if start <= offset < end and (best_len is None or end - start < best_len):
                best, best_len = name, end - start
        return best

    # ------------------------------------------------------------------
    def _find_functions(self):
        s = self.stripped
        n = len(s)
        i = 0
        while i < n:
            p = s.find("(", i)
            if p == -1:
                break
            i = p + 1
            # Identifier (possibly qualified) immediately before '('.
            j = p
            while j > 0 and s[j - 1] in " \t\n":
                j -= 1
            k = j
            while k > 0 and (s[k - 1].isalnum() or s[k - 1] in "_:~"):
                k -= 1
            ident = s[k:j]
            if not ident or ident.rsplit("::", 1)[-1] in KEYWORDS:
                continue
            if not IDENT_RE.match(ident.rsplit("::", 1)[-1] or " "):
                continue
            if k > 0 and (s[k - 1] == "." or s[k - 2:k] == "->"):
                continue  # member call, not a definition
            # Statement must not introduce a type/namespace (handles
            # `class CAPE_CAPABILITY("mutex") Mutex {`).
            if self._statement_keyword(k) in TYPE_INTRO:
                continue
            close = srcscan.skip_balanced(s, p, "(", ")")
            body = self._body_after_params(close)
            if body is None:
                continue
            body_start, quals = body
            body_end = srcscan.skip_balanced(s, body_start, "{", "}")
            cls = (ident.rsplit("::", 1)[0] if "::" in ident
                   else self.innermost_class(k))
            fn = Function(ident, cls, s[p + 1:close - 1], quals, k,
                          body_start + 1, body_end - 1)
            self.functions.append(fn)
            i = body_start + 1  # nested constructs are parsed per-function

    def _statement_keyword(self, offset):
        s = self.stripped
        j = offset
        while j > 0 and s[j - 1] not in ";{}":
            j -= 1
        m = IDENT_RE.search(s, j, offset)
        return m.group(0) if m else ""

    def _body_after_params(self, i):
        """From just past ')', returns (offset of '{', qualifier text) for a
        definition, or None for declarations/expressions."""
        s = self.stripped
        n = len(s)
        quals_start = i
        while i < n:
            c = s[i]
            if c in " \t\n":
                i += 1
            elif c == "{":
                return i, s[quals_start:i]
            elif c in ";=":
                return None
            elif c == ":" and s[i:i + 2] != "::":
                # Constructor initializer list: consume `name(args)` /
                # `name{args}` items up to the body brace.
                i += 1
                while i < n and s[i] != "{":
                    if s[i] == "(":
                        i = srcscan.skip_balanced(s, i, "(", ")")
                    elif s[i] == ";":
                        return None
                    else:
                        i += 1
                    # A brace directly after an identifier inside the list is
                    # a brace-init; one after ',' or at item end is the body.
                    if i < n and s[i] == "{" and _prev_nonspace(s, i) not in ",:)":
                        i = srcscan.skip_balanced(s, i, "{", "}")
                if i < n:
                    return i, s[quals_start:i]
                return None
            elif c == "-" and s[i:i + 2] == "->":
                i += 2  # trailing return type: skip tokens until '{' or ';'
                while i < n and s[i] not in "{;=":
                    if s[i] == "<":
                        i = srcscan.skip_balanced(s, i, "<", ">")
                    else:
                        i += 1
            elif IDENT_RE.match(s, i):
                w = IDENT_RE.match(s, i)
                if w.group(0) in TYPE_INTRO:
                    return None
                i = w.end()
                while i < n and s[i] in " \t\n":
                    i += 1
                if i < n and s[i] == "(":
                    i = srcscan.skip_balanced(s, i, "(", ")")
            elif c in "&*,)":
                i += 1
            else:
                return None
        return None

    # ------------------------------------------------------------------
    LOOP_RE = re.compile(r"\b(for|while|do)\b")

    def _find_loops(self, fn):
        s = self.stripped
        for m in self.LOOP_RE.finditer(s, fn.body_start, fn.body_end):
            kw = m.group(1)
            if kw == "do":
                i = m.end()
                while i < len(s) and s[i] in " \t\n":
                    i += 1
                if i < len(s) and s[i] == "{":
                    body_end = srcscan.skip_balanced(s, i, "{", "}")
                    # Attach the trailing while-condition as the header.
                    t = s.find("(", body_end)
                    header = s[t + 1:srcscan.skip_balanced(s, t, "(", ")") - 1] \
                        if t != -1 else ""
                    fn.loops.append(Loop("do", m.start(), i, i, i + 1,
                                         body_end - 1, header))
                continue
            p = s.find("(", m.end())
            if p == -1 or s[m.end():p].strip():
                continue
            close = srcscan.skip_balanced(s, p, "(", ")")
            header = s[p + 1:close - 1]
            if kw == "while" and self._is_do_tail(m.start(), close):
                continue
            i = close
            while i < len(s) and s[i] in " \t\n":
                i += 1
            if i < len(s) and s[i] == "{":
                body_start, body_end = i + 1, srcscan.skip_balanced(s, i, "{", "}") - 1
            else:
                body_start, body_end = i, self._statement_end(i, fn.body_end)
            kind = kw
            if kw == "for" and _range_for_colon(header):
                kind = "range-for"
            fn.loops.append(Loop(kind, m.start(), p + 1, close - 1, body_start,
                                 body_end, header))

    def _is_do_tail(self, while_start, close):
        s = self.stripped
        prev = _prev_nonspace_idx(s, while_start)
        if prev is None or s[prev] != "}":
            return False
        i = close
        while i < len(s) and s[i] in " \t\n":
            i += 1
        return i < len(s) and s[i] == ";"

    def _statement_end(self, i, limit):
        s = self.stripped
        while i < limit:
            c = s[i]
            if c == ";":
                return i + 1
            if c == "(":
                i = srcscan.skip_balanced(s, i, "(", ")")
            elif c == "{":
                i = srcscan.skip_balanced(s, i, "{", "}")
            else:
                i += 1
        return limit

    # ------------------------------------------------------------------
    CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")

    def _find_calls(self, fn):
        s = self.stripped
        for m in self.CALL_RE.finditer(s, fn.body_start, fn.body_end):
            name = m.group(1)
            if name in KEYWORDS or name in TYPE_INTRO:
                continue
            k = m.start()
            while k > fn.body_start:
                c = s[k - 1]
                if c.isalnum() or c in "_.":
                    k -= 1
                elif c == ":" and s[k - 2:k - 1] == ":":
                    k -= 2
                elif c == ">" and s[k - 2:k - 1] == "-":
                    k -= 2
                else:
                    break
            expr = s[k:m.start() + len(name)].strip()
            p = m.end() - 1
            close = srcscan.skip_balanced(s, p, "(", ")")
            fn.calls.append(Call(name, expr, s[p + 1:close - 1], m.start()))

    # ------------------------------------------------------------------
    def _find_lambda_spans(self, fn):
        s = self.stripped
        i = fn.body_start
        while i < fn.body_end:
            b = s.find("[", i)
            if b == -1 or b >= fn.body_end:
                break
            prev = _prev_nonspace(s, b)
            if prev and (prev.isalnum() or prev in "_])"):
                i = b + 1  # subscript, not a capture list
                continue
            close = srcscan.skip_balanced(s, b, "[", "]")
            j = _skip_space(s, close)
            if s[j:j + 1] == "(":
                j = _skip_space(s, srcscan.skip_balanced(s, j, "(", ")"))
            while True:
                w = IDENT_RE.match(s, j)
                if w and w.group(0) in ("mutable", "noexcept", "constexpr"):
                    j = _skip_space(s, w.end())
                    continue
                if s[j:j + 2] == "->":
                    j += 2
                    while j < fn.body_end and s[j] not in "{;":
                        if s[j] == "<":
                            j = srcscan.skip_balanced(s, j, "<", ">")
                        else:
                            j += 1
                break
            if s[j:j + 1] == "{":
                end = srcscan.skip_balanced(s, j, "{", "}")
                fn.lambda_spans.append((j + 1, end - 1))
                i = j + 1  # keep scanning inside for nested lambdas
            else:
                i = b + 1

    # ------------------------------------------------------------------
    LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*\(([^();]*)\)\s*;")
    REQUIRES_RE = re.compile(r"\bCAPE_REQUIRES\s*\(([^()]*)\)")

    def _find_lock_scopes(self, fn):
        s = self.stripped
        qual = (fn.cls + "::") if fn.cls else "::"
        for m in self.REQUIRES_RE.finditer(fn.quals_text):
            for expr in m.group(1).split(","):
                norm = _normalize_mutex(expr)
                if norm:
                    fn.lock_scopes.append(LockScope(
                        norm, qual + norm, fn.body_start, fn.body_end,
                        fn.header_start))
        brace_pairs = _brace_pairs(s, fn.body_start, fn.body_end)
        for m in self.LOCK_DECL_RE.finditer(s, fn.body_start, fn.body_end):
            norm = _normalize_mutex(m.group(1))
            if not norm:
                continue
            end = fn.body_end
            for open_b, close_b in brace_pairs:
                if open_b < m.start() < close_b and close_b < end:
                    end = close_b
            fn.lock_scopes.append(LockScope(norm, qual + norm, m.end(), end,
                                            m.start()))

    # ------------------------------------------------------------------
    UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<")
    USING_RE = re.compile(r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:map|set)\s*<")

    def _find_unordered_decls(self):
        s = self.stripped
        for m in self.USING_RE.finditer(s):
            self.unordered_aliases.add(m.group(1))
        for m in self.UNORDERED_RE.finditer(s):
            i = srcscan.skip_balanced(s, m.end() - 1, "<", ">")
            w = IDENT_RE.match(s, _skip_space(s, i))
            if w:
                self.unordered_vars[w.group(0)] = self.line_at(m.start())
        for alias in self.unordered_aliases:
            for m in re.finditer(r"\b" + re.escape(alias) + r"\s+(\w+)\s*[;={(]", s):
                self.unordered_vars[m.group(1)] = self.line_at(m.start())


# ----------------------------------------------------------------------------
# Small helpers

def _mask_preprocessor(stripped):
    """Blanks preprocessor directives (with continuations) so `#define F(x)
    do {` cannot be mistaken for a definition. Line structure is kept."""
    out = []
    cont = False
    for line in stripped.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def _prev_nonspace(s, i):
    j = _prev_nonspace_idx(s, i)
    return s[j] if j is not None else ""


def _prev_nonspace_idx(s, i):
    j = i - 1
    while j >= 0 and s[j] in " \t\n":
        j -= 1
    return j if j >= 0 else None


def _skip_space(s, i):
    while i < len(s) and s[i] in " \t\n":
        i += 1
    return i


def _range_for_colon(header):
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == ":" and depth == 0:
            if header[i + 1:i + 2] == ":" or header[i - 1:i] == ":":
                i += 1
            else:
                return True
        i += 1
    return False


def _normalize_mutex(expr):
    e = expr.strip().lstrip("&").strip()
    if e.startswith("this->"):
        e = e[len("this->"):]
    return e


def _brace_pairs(s, start, end):
    pairs = []
    stack = []
    i = start
    while i < end:
        c = s[i]
        if c == "{":
            stack.append(i)
        elif c == "}":
            if stack:
                pairs.append((stack.pop(), i))
        i += 1
    return pairs


def parse_file(path, root):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    return FileAst(path, srcscan.relpath(path, root), text)
