"""The four invariant checks of the CAPE analyzer (DESIGN.md §17).

Each check walks the structural AST (cxxast.py) of every analyzed file plus
a whole-program call graph keyed by function base name, and yields Finding
objects. Check names are the suppression keys for
`// analyzer:allow(<check>) <why>`:

  cancellation        every data-bounded loop in the request-path
                      directories reaches a stop-token check (directly, or
                      through a callee that provably checks) — an
                      uncancellable scan turns a deadline into a hang.
  lock-order          the static lock-acquisition graph (MutexLock scopes +
                      CAPE_REQUIRES annotations, closed over calls) must be
                      acyclic, and no lock may be held across file IO,
                      CondVar::Wait on a foreign mutex, or a blocking
                      thread-pool call (ParallelFor waits for its workers).
  toggle-dispatch     every kernel dispatcher must consult
                      Table::UsesPagedScan() (or return NotImplemented)
                      before choosing a resident-row path, and must consult
                      it before the vectorized-kernel toggle — a miss sends
                      non-resident tables down code that reads rows_
                      directly.
  unordered-iteration iteration over std::unordered_{map,set} must not feed
                      an order-sensitive sink (container append, string/
                      stream build-up, float accumulation): hash-bucket
                      order varies across libstdc++ versions and seeds, and
                      CAPE's outputs are promised byte-identical.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import srcscan  # noqa: E402


class Finding:
    def __init__(self, rel, line, check, message):
        self.path = rel
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.check)


# ----------------------------------------------------------------------------
# Whole-program facts

STOP_CALL_NAMES = {
    "CAPE_RETURN_IF_STOPPED", "CAPE_RETURN_IF_STOPPED_BLOCK",
    "ShouldStop", "ShouldStopNow",
}

# Raw file IO (the lint's raw-file-io set) plus the storage-layer page IO and
# C++ stream types — anything that can put a disk access inside a lock scope.
IO_CALL_NAMES = {
    "fopen", "fdopen", "freopen", "fread", "fwrite", "fseek", "fseeko",
    "ftell", "ftello", "fclose", "fflush", "mmap", "munmap", "pread",
    "pwrite", "lseek", "ReadPage", "WritePage",
}
IO_TYPE_RE = re.compile(
    r"\bstd\s*::\s*(?:o|i)?fstream\b|\bstd::filesystem::\w+\s*\(")

# Pool calls that block the calling thread until worker tasks finish.
POOL_WAIT_NAMES = {"ParallelFor"}

CONDVAR_WAIT_NAMES = {"Wait", "WaitFor"}

TOGGLE_PAGED = re.compile(r"\bUsesPagedScan\b|\bPagedStorageEnabled\b")
TOGGLE_VEC = re.compile(r"\bVectorizedKernelsEnabled\b")
TOGGLE_DICT = re.compile(r"\bDictionaryKernelsEnabled\b")
NOT_IMPLEMENTED = re.compile(r"\bNotImplemented\b")


class Program:
    """Cross-file facts: call graph plus per-function derived properties."""

    def __init__(self, file_asts):
        self.files = file_asts
        self.by_base = {}
        for fa in file_asts:
            for fn in fa.functions:
                self.by_base.setdefault(fn.base_name, []).append(fn)
        self.checks_stop = self._fixpoint(self._direct_checks_stop,
                                          include_lambda_calls=True)
        self.does_io = self._fixpoint(self._direct_does_io,
                                      include_lambda_calls=False)
        self.acquires = self._acquires_fixpoint()

    def _direct_checks_stop(self, fn):
        # Lambda bodies count: a ParallelFor worker lambda that checks the
        # stop token is exactly how hot loops stay cancellable.
        return any(c.name in STOP_CALL_NAMES for c in fn.calls)

    def _direct_does_io(self, fn):
        # Lambda bodies do NOT count: a closure handed to the thread pool
        # runs on a worker later, not at the lexical site, so its IO is not
        # this function's IO (the lock checks consume this fact).
        if any(c.name in IO_CALL_NAMES for c in fn.calls
               if not fn.in_lambda(c.start)):
            return True
        body = _blank_lambda_spans(fn)
        return bool(IO_TYPE_RE.search(body))

    def _fixpoint(self, direct_fn, include_lambda_calls):
        prop = {}
        for fns in self.by_base.values():
            for fn in fns:
                prop[id(fn)] = direct_fn(fn)
        changed = True
        while changed:
            changed = False
            for fns in self.by_base.values():
                for fn in fns:
                    if prop[id(fn)]:
                        continue
                    for c in fn.calls:
                        if not include_lambda_calls and fn.in_lambda(c.start):
                            continue
                        if any(prop[id(g)] for g in self.by_base.get(c.name, ())):
                            prop[id(fn)] = True
                            changed = True
                            break
        return prop

    def _acquires_fixpoint(self):
        """Function -> set of qualified mutex names it (or a callee) may
        acquire via a MutexLock scope. CAPE_REQUIRES scopes are *held*, not
        acquired, so they do not propagate to callers (the caller already
        holds the lock — no acquisition edge). Scopes and call edges inside
        lambda bodies are deferred work and excluded likewise."""
        acq = {}
        for fns in self.by_base.values():
            for fn in fns:
                acq[id(fn)] = {s.qualified for s in fn.lock_scopes
                               if s.decl_line_offset != fn.header_start
                               and not fn.in_lambda(s.decl_line_offset)}
        changed = True
        while changed:
            changed = False
            for fns in self.by_base.values():
                for fn in fns:
                    for c in fn.calls:
                        if fn.in_lambda(c.start):
                            continue
                        for g in self.by_base.get(c.name, ()):
                            extra = acq[id(g)] - acq[id(fn)]
                            if extra:
                                acq[id(fn)] |= extra
                                changed = True
        return acq

    def calls_within(self, fn, start, end, include_lambda_calls=True):
        return [c for c in fn.calls if start <= c.start < end and
                (include_lambda_calls or not fn.in_lambda(c.start))]


def _blank_lambda_spans(fn):
    body = fn.file.stripped[fn.body_start:fn.body_end]
    for start, end in fn.lambda_spans:
        a, b = start - fn.body_start, end - fn.body_start
        if 0 <= a < b <= len(body):
            body = body[:a] + " " * (b - a) + body[b:]
    return body


# ----------------------------------------------------------------------------
# Check 1: cancellation coverage

CANCELLATION_DIRS = ("src/pattern/", "src/relational/", "src/explain/",
                     "src/fd/", "src/storage/")

# A loop is *data-bounded* when its trip count scales with table contents:
# rows, pages, groups, fragments, candidate patterns. Loops bounded by the
# schema (columns, attributes, aggregate specs) or by a 2048-row block are
# bounded by construction and excluded. The identifier lists below are the
# repo's actual naming vocabulary for data-scaled quantities; extend them
# when new ones appear (the self-test pins the classifier).
DATA_BOUND_RE = re.compile(
    r"\bnum_rows\b|\bnum_pages\b|\bpage_count\b|\bnum_groups\b|"
    r"\bnum_fragments\b|\brow_count\b|\brows_folded\b|\bend_row\b|"
    r"\btotal_rows\b|\bn_rows\b|\bnum_tuples\b|\brows\.size\b|"
    r"\bstaged_num_groups\b")
DATA_CONTAINER_RE = re.compile(
    r"(?:^|[\s.>:&*(])(?:\w*_)?(rows|pages|fragments|frags|groups|"
    r"candidates|cands|patterns|tuples|row_ids|matches)_?\s*$")


def _range_expr(header):
    """The range expression of a range-for header (after the ':')."""
    depth = 0
    for i, c in enumerate(header):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == ":" and depth == 0 and header[i - 1:i] != ":" \
                and header[i + 1:i + 2] != ":":
            return header[i + 1:]
    return ""


def _is_data_bounded(loop):
    if loop.kind == "range-for":
        return bool(DATA_CONTAINER_RE.search(_range_expr(loop.header_text).strip()))
    return bool(DATA_BOUND_RE.search(loop.header_text))


def check_cancellation(program, fa, report):
    if not any(fa.rel.startswith(d) for d in CANCELLATION_DIRS):
        return
    for fn in fa.functions:
        for loop in fn.loops:
            if not _is_data_bounded(loop):
                continue
            if _loop_reaches_stop_check(program, fn, loop):
                continue
            report(fa, fa.line_at(loop.start), "cancellation",
                   f"data-bounded {loop.kind} loop in {fn.name}() has no "
                   "reachable stop-token check — add a kStopCheckStride "
                   "strided CAPE_RETURN_IF_STOPPED_BLOCK, or route the scan "
                   "through a checked kernel")


def _loop_reaches_stop_check(program, fn, loop):
    for c in program.calls_within(fn, loop.start, loop.body_end):
        if c.name in STOP_CALL_NAMES:
            return True
        if any(program.checks_stop[id(g)] for g in program.by_base.get(c.name, ())):
            return True
    return False


# ----------------------------------------------------------------------------
# Check 2: lock-order and blocking calls under a lock

LOCK_EXEMPT_FILES = {"src/common/mutex.h"}  # implements the primitives


def check_locks(program, fa, report):
    if not fa.rel.startswith("src/") or fa.rel in LOCK_EXEMPT_FILES:
        return
    for fn in fa.functions:
        for scope in fn.lock_scopes:
            if fn.in_lambda(scope.decl_line_offset):
                continue  # a lock taken inside a closure guards that closure
            for c in program.calls_within(fn, scope.start, scope.end,
                                          include_lambda_calls=False):
                _check_blocking_call(program, fa, fn, scope, c, report)


def _check_blocking_call(program, fa, fn, scope, c, report):
    line = fa.line_at(c.start)
    if c.name in IO_CALL_NAMES or \
            any(program.does_io[id(g)] for g in program.by_base.get(c.name, ())):
        report(fa, line, "lock-order",
               f"{fn.name}() holds {scope.qualified} across file IO "
               f"('{c.expr}') — stage the data under the lock, do the IO "
               "outside it")
        return
    if c.name in POOL_WAIT_NAMES:
        report(fa, line, "lock-order",
               f"{fn.name}() holds {scope.qualified} across blocking pool "
               f"call '{c.expr}' — workers that need the lock deadlock "
               "against the waiting submitter")
        return
    if c.name in CONDVAR_WAIT_NAMES and "." in c.expr or \
            c.name in CONDVAR_WAIT_NAMES and "_cv" in c.expr or \
            c.name in CONDVAR_WAIT_NAMES and "cv_" in c.expr:
        arg = c.args_text.split(",")[0].strip().lstrip("&")
        if arg and arg != scope.mutex_expr:
            held = {s.mutex_expr for s in fn.held_locks_at(c.start)}
            if arg not in held:
                report(fa, line, "lock-order",
                       f"{fn.name}() calls {c.expr}({arg}) while holding "
                       f"{scope.qualified} — waiting on a foreign mutex "
                       "keeps the held lock blocked for the whole wait")


def check_lock_graph(program, all_files, report_global):
    """Builds the static lock-order graph and rejects cycles. An edge A->B
    exists when a scope holding A acquires B, directly or via a callee."""
    edges = {}
    sites = {}
    for fa in all_files:
        if not fa.rel.startswith("src/") or fa.rel in LOCK_EXEMPT_FILES:
            continue
        for fn in fa.functions:
            for scope in fn.lock_scopes:
                if fn.in_lambda(scope.decl_line_offset):
                    continue
                held = scope.qualified
                for other in fn.lock_scopes:
                    if other is scope or other.mutex_expr == scope.mutex_expr:
                        continue
                    if scope.start <= other.decl_line_offset < scope.end and \
                            other.decl_line_offset != fn.header_start and \
                            not fn.in_lambda(other.decl_line_offset):
                        edges.setdefault(held, set()).add(other.qualified)
                        sites.setdefault((held, other.qualified),
                                         (fa, fa.line_at(other.decl_line_offset)))
                for c in program.calls_within(fn, scope.start, scope.end,
                                              include_lambda_calls=False):
                    for g in program.by_base.get(c.name, ()):
                        for acquired in program.acquires[id(g)]:
                            if acquired == held:
                                continue
                            edges.setdefault(held, set()).add(acquired)
                            sites.setdefault((held, acquired),
                                             (fa, fa.line_at(c.start)))
    # DFS cycle detection with path recovery.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            st = color.get(nxt, WHITE)
            if st == GREY:
                cycle = stack[stack.index(nxt):] + [nxt]
                fa, line = sites.get((node, nxt), (None, 0))
                report_global(fa, line, "lock-order",
                              "lock-order cycle: " + " -> ".join(cycle) +
                              " — impose a single acquisition order")
                return True
            if st == WHITE and visit(nxt):
                return True
        stack.pop()
        color[node] = BLACK
        return False

    for node in sorted(edges):
        if color.get(node, WHITE) == WHITE:
            if visit(node):
                return


# ----------------------------------------------------------------------------
# Check 3: toggle-dispatch completeness

# Operator entry points that every caller routes table scans through. Each
# must be paged-aware: consult UsesPagedScan()/PagedStorageEnabled() or
# return NotImplemented for non-resident tables — directly or through
# another dispatcher it unconditionally delegates to.
DISPATCH_SEEDS = {
    "FilterEquals", "GroupByAggregate", "FilterGroupAggregate",
    "CountFilterMatches", "Filter", "Project", "ProjectDistinct",
    "SortTable", "Cube",
}
DISPATCH_DIRS = ("src/relational/",)


def check_dispatch(program, all_files, report_global):
    dispatchers = []
    for fa in all_files:
        if not any(fa.rel.startswith(d) for d in DISPATCH_DIRS):
            continue
        for fn in fa.functions:
            body = fa.stripped[fn.body_start:fn.body_end]
            consults_vec = bool(TOGGLE_VEC.search(body))
            if fn.base_name in DISPATCH_SEEDS or consults_vec:
                dispatchers.append((fa, fn, body, consults_vec))

    aware = {}  # base name -> bool (merged over overloads)
    bodies = {}
    for fa, fn, body, _ in dispatchers:
        direct = bool(TOGGLE_PAGED.search(body) or NOT_IMPLEMENTED.search(body))
        aware[fn.base_name] = aware.get(fn.base_name, False) or direct
        bodies.setdefault(fn.base_name, []).append((fa, fn, body))

    # One delegation hop: a dispatcher that routes every scan into another
    # dispatcher inherits its paged handling (e.g. the name-based
    # GroupByAggregate overload delegating to the index-based one).
    changed = True
    while changed:
        changed = False
        for name, entries in bodies.items():
            if aware.get(name):
                continue
            for fa, fn, body in entries:
                if any(aware.get(c.name) for c in fn.calls
                       if c.name in aware and c.name != name):
                    aware[name] = True
                    changed = True

    for fa, fn, body, consults_vec in dispatchers:
        if not aware.get(fn.base_name):
            report_global(fa, fa.line_at(fn.header_start), "toggle-dispatch",
                          f"dispatcher {fn.name}() handles the vectorized/"
                          "dictionary toggles but never consults "
                          "UsesPagedScan() or returns NotImplemented — "
                          "non-resident tables would take a resident-row "
                          "path")
            continue
        if consults_vec:
            paged_m = TOGGLE_PAGED.search(body)
            vec_m = TOGGLE_VEC.search(body)
            ni_m = NOT_IMPLEMENTED.search(body)
            if paged_m is None and ni_m is None:
                continue  # delegated paged handling: ordering checked there
            guard = min(m.start() for m in (paged_m, ni_m) if m is not None)
            if vec_m is not None and vec_m.start() < guard:
                report_global(fa, fa.line_at(fn.body_start + vec_m.start()),
                              "toggle-dispatch",
                              f"{fn.name}() consults VectorizedKernelsEnabled() "
                              "before the paged-table guard — a paged table "
                              "would be routed by the vectorized toggle "
                              "instead of its residency")


# ----------------------------------------------------------------------------
# Check 4: determinism hazards — unordered iteration feeding ordered output

ORDER_SINK_RE = re.compile(
    r"\bpush_back\b|\bemplace_back\b|\bpush_front\b|\bAppendRow\b|"
    r"\bAppendValue\b|\bappend\b|\bAdd[A-Z]\w*\s*\(|<<|\+=")


PUSH_SINK_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(")


def check_unordered(program, fa, unordered_names, report):
    """`unordered_names` must be scoped: names declared in this file plus in
    headers (where members live). A name that is unordered in some *other*
    .cc must not taint an identically-named local here."""
    if not fa.rel.startswith("src/"):
        return
    for fn in fa.functions:
        for loop in fn.loops:
            target = None
            if loop.kind == "range-for":
                expr = _range_expr(loop.header_text).strip()
                last = re.findall(r"[A-Za-z_]\w*", expr)
                if "unordered_map" in expr or "unordered_set" in expr:
                    target = expr
                elif last and last[-1] in unordered_names:
                    target = last[-1]
            else:
                m = re.search(r"(\w+)\s*(?:\.|->)\s*begin\s*\(", loop.header_text)
                if m and m.group(1) in unordered_names:
                    target = m.group(1)
            if target is None:
                continue
            body = fa.stripped[loop.body_start:loop.body_end]
            if not _has_order_hazard(fa, fn, loop, body):
                continue
            report(fa, fa.line_at(loop.start), "unordered-iteration",
                   f"{fn.name}() iterates unordered container '{target}' "
                   "into an order-sensitive sink — hash-bucket order is not "
                   "deterministic across platforms; iterate a sorted key "
                   "list (or switch to an ordered/first-seen index)")


def _has_order_hazard(fa, fn, loop, body):
    """Collect-then-sort is the sanctioned pattern: pushing into a vector
    that is std::sort-ed (with a deterministic comparator) after the loop
    erases the bucket order, so such pushes are not hazards."""
    after = fa.stripped[loop.body_end:fn.body_end]
    benign = set()
    for pm in PUSH_SINK_RE.finditer(body):
        v = pm.group(1)
        if re.search(r"\bsort\s*\(\s*" + re.escape(v) + r"\b", after):
            benign.add(v)
    for sm in ORDER_SINK_RE.finditer(body):
        pre = re.search(r"(\w+)\s*(?:\.|->)\s*$", body[:sm.start()])
        if sm.group(0).split("(")[0].strip() in ("push_back", "emplace_back") \
                and pre and pre.group(1) in benign:
            continue
        return True
    return False


ALL_CHECKS = ("cancellation", "lock-order", "toggle-dispatch",
              "unordered-iteration")


def run_checks(file_asts, enabled=None):
    """Runs every enabled check over the parsed files; returns findings with
    inline `analyzer:allow` suppressions already applied."""
    enabled = set(enabled or ALL_CHECKS)
    program = Program(file_asts)
    # Unordered names seen in headers are visible everywhere (members,
    # aliases); names from a .cc stay scoped to that file.
    header_names = set()
    for fa in file_asts:
        if fa.rel.endswith((".h", ".hpp")):
            header_names |= set(fa.unordered_vars)

    findings = []

    def report(fa, line, check, message):
        if fa is not None and srcscan.suppressed(fa.lines, line, check,
                                                 tool="analyzer"):
            return
        findings.append(Finding(fa.rel if fa else "<global>", line, check,
                                message))

    for fa in file_asts:
        if "cancellation" in enabled:
            check_cancellation(program, fa, report)
        if "lock-order" in enabled:
            check_locks(program, fa, report)
        if "unordered-iteration" in enabled:
            check_unordered(program, fa, header_names | set(fa.unordered_vars),
                            report)
    if "lock-order" in enabled:
        check_lock_graph(program, file_asts, report)
    if "toggle-dispatch" in enabled:
        check_dispatch(program, file_asts, report)

    findings.sort(key=Finding.sort_key)
    return findings
