#!/usr/bin/env python3
"""Shared C++ source-scanning primitives for CAPE's repo tools.

tools/lint.py (regex lint) and tools/analyzer (AST-grounded invariant
analyzer) must agree on two things or they drift apart in confusing ways:

  * what counts as *code* — both match only against a stripped copy of the
    file where comment and string-literal bodies are blanked (newlines
    preserved, so line numbers survive);
  * what counts as a *suppression* — the inline
    `// <tool>:allow(<rule>) <why>` syntax, where <tool> is "lint" or
    "analyzer" and the justification is mandatory by convention.

Both live here so there is exactly one implementation of each.
"""

import os
import re

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Top-level directories scanned by the whole-repo modes of both tools.
SCAN_TOPDIRS = ("src", "tests", "bench", "examples", "tools")


# ----------------------------------------------------------------------------
# Comment/string stripping
#
# Rules must not fire on prose ("nothing constructs std::thread directly" in
# a doc comment) or on string contents, so matching happens on a stripped
# copy where comment and literal bodies are blanked with spaces. Newlines
# are preserved: line numbers in the stripped text equal line numbers in the
# original.

def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                out.append(" " * (len(m.group(0))))
                i += len(m.group(0))
                end = text.find(")" + m.group(1) + '"', i)
                if end == -1:
                    end = n
                while i < end:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
                tail = len(")" + m.group(1) + '"')
                out.append(" " * min(tail, n - i))
                i += tail
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of_offset(text, offset):
    return text.count("\n", 0, offset) + 1


# ----------------------------------------------------------------------------
# Suppressions: `// <tool>:allow(<rule>[, <rule>...]) <why>`
#
# A suppression applies to the line it sits on; the
# `<tool>:allow-next-line(<rule>) <why>` form sits on its own line and
# applies to the line below (for statements too long to carry a trailing
# comment). The rule list is comma-separated; the trailing justification is
# free text (required by convention, not parsed). Tools share this parser so
# a suppression that works for lint cannot silently mean something else to
# the analyzer.

def allow_regex(tool, next_line=False):
    word = "allow-next-line" if next_line else "allow"
    return re.compile(re.escape(tool) + ":" + word +
                      r"\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")


def _names_rule(regex, line, rule):
    m = regex.search(line)
    return bool(m) and rule in [r.strip() for r in m.group(1).split(",")]


def suppressed(original_lines, line_no, rule, tool="lint"):
    """True when 1-based `line_no` carries a `<tool>:allow(...)` naming
    `rule`, or the line above carries the `<tool>:allow-next-line(...)`
    form."""
    if line_no - 1 >= len(original_lines) or line_no < 1:
        return False
    if _names_rule(allow_regex(tool), original_lines[line_no - 1], rule):
        return True
    return line_no >= 2 and _names_rule(allow_regex(tool, next_line=True),
                                        original_lines[line_no - 2], rule)


# ----------------------------------------------------------------------------
# Balanced-delimiter scanning over stripped text.

def skip_balanced(text, i, open_ch, close_ch):
    """Returns index just past the matching close_ch; `i` is at open_ch."""
    depth = 0
    n = len(text)
    while i < n:
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def collect_files(root, topdirs=SCAN_TOPDIRS, extensions=SOURCE_EXTENSIONS):
    files = []
    for top in topdirs:
        top_dir = os.path.join(root, top)
        if not os.path.isdir(top_dir):
            continue
        for dirpath, _, names in os.walk(top_dir):
            for name in sorted(names):
                if name.endswith(extensions):
                    files.append(os.path.join(dirpath, name))
    return files
