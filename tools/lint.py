#!/usr/bin/env python3
"""CAPE repo lint: invariants the type system cannot enforce.

The compile-time layer (Clang thread-safety annotations, [[nodiscard]]
Status) catches lock-discipline and dropped-error bugs; this linter covers
the repo-specific rules that need whole-file or naming context instead of
types (DESIGN.md §12). Rules:

  raw-sync            No raw std synchronization primitive (std::mutex,
                      std::lock_guard, std::condition_variable, ...) outside
                      src/common/mutex.h. Everything locks through the
                      annotated cape::Mutex/MutexLock/CondVar wrappers so the
                      thread-safety analysis sees every acquisition.
  raw-thread          No direct thread creation (std::thread/jthread/async)
                      outside src/common/thread_pool.{h,cc}. All parallelism
                      goes through ThreadPool::ParallelFor, which owns
                      cooperative stop, exception capture, and determinism.
  nondeterminism      No nondeterministic source (rand, std::random_device,
                      wall clocks) in src/ result paths. Mining/explain
                      output must be byte-identical across runs and thread
                      counts; seeded std::mt19937 and steady_clock (used
                      only for deadlines/profiling) stay legal.
  check-in-status-fn  No CAPE_CHECK/CAPE_DCHECK inside a function that
                      returns Status or Result<T>: such a function has an
                      error channel, so aborting the process is almost
                      always the wrong response to a recoverable condition.
  failpoint-name      CAPE_FAILPOINT sites are dotted lower_snake paths
                      ("csv.read_row"), ≥ 2 segments, so CAPE_FAILPOINTS env
                      syntax and the site registry stay parseable.
  internal-include    "<dir>/x_internal.h" headers are private to src/<dir>/:
                      only .cc/_internal.h files in that directory may
                      include them, and no include path may contain "../".
  raw-file-io         No raw file IO (fopen/fread/fwrite/pread/pwrite/mmap/
                      lseek/::open, ...) outside src/storage/. All disk bytes
                      go through HeapFile/BufferManager so checksums, the
                      storage.page_read failpoint, and the page-cache budget
                      cannot be bypassed (DESIGN.md §15). Socket IO
                      (::read/::write/::close) and iostreams stay legal.

Suppression: append `// lint:allow(<rule>) <why>` to the offending line, or
put `// lint:allow-next-line(<rule>) <why>` on the line above when the
statement is too long to carry a trailing comment (tools/srcscan.py parses
both forms, for this tool and for tools/analyzer alike). Suppressions are
meant to be rare and must carry a justification.

Usage:
  tools/lint.py                 # lint the whole repo
  tools/lint.py FILE...         # lint specific files (CI changed-file mode)
  tools/lint.py --self-test     # prove every rule fires on a seeded violation
"""

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import srcscan  # noqa: E402  (shared stripping + suppression semantics)

# ----------------------------------------------------------------------------
# Rule tables

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?|call_once|once_flag)\b")
RAW_SYNC_ALLOWED = {"src/common/mutex.h"}

RAW_THREAD_RE = re.compile(r"\bstd::(?:thread|jthread|async)\b")
RAW_THREAD_ALLOWED = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}

NONDETERMINISM_RE = re.compile(
    r"\b(?:rand|srand|rand_r|drand48|random)\s*\(|"
    r"\bstd::random_device\b|"
    r"\b(?:std::chrono::)?(?:system_clock|high_resolution_clock)\b|"
    r"\bgettimeofday\b|\blocaltime(?:_r)?\b|\bgmtime(?:_r)?\b|"
    r"\bstd::time\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")

CHECK_RE = re.compile(r"\bCAPE_D?CHECK\s*\(")

FAILPOINT_CALL_RE = re.compile(r'\bCAPE_FAILPOINT(?:_FIRES)?\s*\(\s*"([^"]*)"')
FAILPOINT_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

RAW_FILE_IO_RE = re.compile(
    r"\b(?:fopen|fdopen|freopen|fread|fwrite|fseeko?|ftello?|fclose|fflush|"
    r"mmap|munmap|pread|pwrite|lseek)\s*\(|::open\s*\(")
RAW_FILE_IO_ALLOWED_PREFIX = "src/storage/"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

SOURCE_EXTENSIONS = srcscan.SOURCE_EXTENSIONS


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ----------------------------------------------------------------------------
# Comment/string stripping and suppression parsing are shared with
# tools/analyzer via srcscan.py, so the two tools cannot drift on what
# counts as code or on `:allow(...)` semantics.

strip_comments_and_strings = srcscan.strip_comments_and_strings
line_of_offset = srcscan.line_of_offset
_skip_balanced = srcscan.skip_balanced


def suppressed(original_lines, line_no, rule):
    return srcscan.suppressed(original_lines, line_no, rule, tool="lint")


# ----------------------------------------------------------------------------
# check-in-status-fn: find spans of function bodies whose return type is
# Status or Result<T>, then flag CAPE_CHECK/CAPE_DCHECK inside them.

STATUS_FN_RE = re.compile(
    r"^[ \t]*(?:static\s+|inline\s+|virtual\s+|constexpr\s+|friend\s+)*"
    r"(?:::)?(?:cape::)?(Status|Result\s*<[^;{}]*?>)[ \t\n]+"
    r"(~?[A-Za-z_][\w:]*)[ \t\n]*\(",
    re.MULTILINE)


def status_function_spans(stripped):
    """Yields (body_start, body_end) offsets of Status/Result function bodies."""
    for m in STATUS_FN_RE.finditer(stripped):
        i = _skip_balanced(stripped, m.end() - 1, "(", ")")
        n = len(stripped)
        # Consume trailing qualifiers/attribute macros: `const`, `noexcept`,
        # `override`, CAPE_EXCLUDES(mu_), ... until `{` (definition) or
        # anything else (declaration — skip).
        while True:
            while i < n and stripped[i] in " \t\n":
                i += 1
            if i >= n:
                break
            if stripped[i] == "{":
                yield (i, _skip_balanced(stripped, i, "{", "}"))
                break
            w = re.match(r"[A-Za-z_]\w*", stripped[i:])
            if w:
                i += w.end()
                while i < n and stripped[i] in " \t\n":
                    i += 1
                if i < n and stripped[i] == "(":
                    i = _skip_balanced(stripped, i, "(", ")")
                continue
            break  # `;`, `=`, `:` ... — not a definition


# ----------------------------------------------------------------------------
# Per-file linting

relpath = srcscan.relpath


def lint_file(path, root):
    rel = relpath(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(rel, 0, "io", f"cannot read file: {e}")]

    original_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    findings = []

    def report(line_no, rule, message):
        if not suppressed(original_lines, line_no, rule):
            findings.append(Finding(rel, line_no, rule, message))

    in_src = rel.startswith("src/")

    if in_src and rel not in RAW_SYNC_ALLOWED:
        for m in RAW_SYNC_RE.finditer(stripped):
            report(line_of_offset(stripped, m.start()), "raw-sync",
                   f"raw {m.group(0)} — use cape::Mutex/MutexLock/CondVar "
                   "(common/mutex.h) so the thread-safety analysis sees the lock")

    if in_src and rel not in RAW_THREAD_ALLOWED:
        for m in RAW_THREAD_RE.finditer(stripped):
            report(line_of_offset(stripped, m.start()), "raw-thread",
                   f"direct {m.group(0)} — all parallelism goes through "
                   "ThreadPool::ParallelFor (common/thread_pool.h)")

    if in_src and not rel.startswith(RAW_FILE_IO_ALLOWED_PREFIX):
        for m in RAW_FILE_IO_RE.finditer(stripped):
            report(line_of_offset(stripped, m.start()), "raw-file-io",
                   f"raw file IO '{m.group(0).strip()}' outside src/storage/ — "
                   "go through HeapFile/BufferManager (storage/) so checksums, "
                   "failpoints, and the page-cache budget apply")

    if in_src:
        for m in NONDETERMINISM_RE.finditer(stripped):
            report(line_of_offset(stripped, m.start()), "nondeterminism",
                   f"nondeterministic source '{m.group(0).strip()}' in a result "
                   "path — results must be byte-identical across runs; use a "
                   "seeded generator or steady_clock")

        for body_start, body_end in status_function_spans(stripped):
            for m in CHECK_RE.finditer(stripped, body_start, body_end):
                report(line_of_offset(stripped, m.start()), "check-in-status-fn",
                       "CAPE_CHECK in a Status/Result-returning function — "
                       "return the error instead of aborting the process")

        # Failpoint names live inside string literals — scan the raw text.
        for m in FAILPOINT_CALL_RE.finditer(text):
            name = m.group(1)
            if not FAILPOINT_NAME_RE.match(name):
                report(line_of_offset(text, m.start()), "failpoint-name",
                       f"failpoint site '{name}' must be dotted lower_snake "
                       "segments like 'module.site'")

    for idx, line in enumerate(original_lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        inc = m.group(1)
        if "../" in inc:
            report(idx, "internal-include",
                   f"relative include '{inc}' — include project headers "
                   "root-relative (\"dir/file.h\")")
            continue
        base = os.path.basename(inc)
        if base.endswith("_internal.h"):
            inc_dir = os.path.dirname(inc)
            ok = (rel.startswith(f"src/{inc_dir}/")
                  and (rel.endswith(".cc") or rel.endswith("_internal.h")))
            if not ok:
                report(idx, "internal-include",
                       f"'{inc}' is internal to src/{inc_dir}/ — only .cc files "
                       "in that directory may include it; depend on the public "
                       "header instead")

    return findings


def collect_files(root):
    return srcscan.collect_files(root)


def run_lint(root, files=None):
    if files is None:
        files = collect_files(root)
    findings = []
    for path in files:
        findings.extend(lint_file(path, root))
    return findings


# ----------------------------------------------------------------------------
# Self-test: seed one violation per rule in a temp tree and require the
# linter to (a) flag each one, (b) pass the clean + suppressed fixtures.

SELF_TEST_FIXTURES = {
    # filename -> (content, expected rule or None)
    "src/foo/bad_sync.cc": (
        "#include <mutex>\nstd::mutex mu;\n", "raw-sync"),
    "src/foo/bad_thread.cc": (
        "#include <thread>\nvoid F() { std::thread t([]{}); t.join(); }\n",
        "raw-thread"),
    "src/foo/bad_rand.cc": (
        "#include <cstdlib>\nint F() { return rand() % 7; }\n",
        "nondeterminism"),
    "src/foo/bad_clock.cc": (
        "#include <chrono>\nauto F() { return std::chrono::system_clock::now(); }\n",
        "nondeterminism"),
    "src/foo/bad_check.cc": (
        '#include "common/status.h"\n'
        '#include "common/logging.h"\n'
        "cape::Status F(int x) {\n"
        "  CAPE_CHECK(x > 0);\n"
        "  return cape::Status::OK();\n"
        "}\n", "check-in-status-fn"),
    "src/foo/bad_failpoint.cc": (
        '#include "common/failpoint.h"\n'
        "cape::Status F() {\n"
        '  CAPE_FAILPOINT("BadName");\n'
        "  return cape::Status::OK();\n"
        "}\n", "failpoint-name"),
    "src/foo/bad_failpoint_fires.cc": (
        '#include "common/failpoint.h"\n'
        "bool F() {\n"
        '  return CAPE_FAILPOINT_FIRES("AlsoBad");\n'
        "}\n", "failpoint-name"),
    "src/foo/bad_fileio.cc": (
        "#include <cstdio>\n"
        "#include <fcntl.h>\n"
        "void F() {\n"
        '  std::FILE* f = std::fopen("x", "rb");\n'
        "  std::fclose(f);\n"
        '  (void)::open("x", O_RDONLY);\n'
        "}\n", "raw-file-io"),
    "src/foo/bad_include.cc": (
        '#include "bar/widget_internal.h"\n', "internal-include"),
    "src/foo/bad_relative.cc": (
        '#include "../foo/thing.h"\n', "internal-include"),
    # Clean fixture: mentions forbidden names only in comments/strings, uses
    # a well-formed failpoint, a CHECK in a void function, and a justified
    # suppression — none of which may fire.
    "src/foo/clean.cc": (
        "// std::mutex and rand() in a comment must not fire\n"
        '#include "common/logging.h"\n'
        '#include "common/failpoint.h"\n'
        'const char* kDoc = "std::thread in a string";\n'
        "void G(int x) { CAPE_CHECK(x >= 0); }\n"
        'bool H() { return CAPE_FAILPOINT_FIRES("foo.soft_site"); }\n'
        "cape::Status F() {\n"
        '  CAPE_FAILPOINT("foo.load_row");\n'
        "  return cape::Status::OK();\n"
        "}\n", None),
    "src/foo/suppressed.cc": (
        "#include <mutex>\n"
        "std::mutex mu;  // lint:allow(raw-sync) self-test: justified escape\n",
        None),
    # The allowlisted files may use the raw primitives.
    "src/common/mutex.h": ("#include <mutex>\nstd::mutex raw;\n", None),
    "src/common/thread_pool.cc": (
        "#include <thread>\nstd::thread worker;\n", None),
    # Storage owns the disk: raw file IO is legal only under src/storage/.
    # Socket-style ::read/::write/::close stay legal everywhere (server.cc).
    "src/storage/io_ok.cc": (
        "#include <unistd.h>\n"
        "long F(int fd, void* buf) { return pread(fd, buf, 8, 0); }\n", None),
    "src/foo/sockets_ok.cc": (
        "#include <unistd.h>\n"
        "long G(int fd, void* buf) { return ::read(fd, buf, 8); }\n"
        "void H(int fd) { ::close(fd); }\n", None),
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="cape_lint_selftest_") as root:
        for name, (content, _) in SELF_TEST_FIXTURES.items():
            path = os.path.join(root, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        findings = run_lint(root)
        by_file = {}
        for f in findings:
            by_file.setdefault(f.path, []).append(f)
        for name, (_, expected_rule) in sorted(SELF_TEST_FIXTURES.items()):
            got = by_file.get(name, [])
            if expected_rule is None:
                if got:
                    failures.append(
                        f"{name}: expected clean, got {[str(f) for f in got]}")
            else:
                if not any(f.rule == expected_rule for f in got):
                    failures.append(
                        f"{name}: expected a {expected_rule} finding, got "
                        f"{[str(f) for f in got] or 'nothing'}")
                extra = [f for f in got if f.rule != expected_rule]
                if extra:
                    failures.append(
                        f"{name}: unexpected extra findings "
                        f"{[str(f) for f in extra]}")
    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint self-test passed: {len(SELF_TEST_FIXTURES)} fixtures, "
          "every rule fires on its seeded violation and stays quiet on clean "
          "code")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: whole repo)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
    files = [os.path.abspath(f) for f in args.files] or None
    findings = run_lint(root, files)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s). Fix them or, if a line is "
              "genuinely exempt, append `// lint:allow(<rule>) <why>`.",
              file=sys.stderr)
        sys.exit(1)
    count = len(files) if files is not None else len(collect_files(root))
    print(f"lint: OK ({count} files)")


if __name__ == "__main__":
    main()
