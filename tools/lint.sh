#!/usr/bin/env bash
# Local lint entry point: self-test first (so a broken linter can't silently
# pass), then the repo. Usage: tools/lint.sh [files...]
set -euo pipefail
cd "$(dirname "$0")/.."
python3 tools/lint.py --self-test
exec python3 tools/lint.py "$@"
