#!/usr/bin/env bash
# Asserts that every hot loop in the kernel layer actually auto-vectorizes
# (DESIGN.md §14). Hot loops carry a trailing `// vec-hot` tag on their
# `for` line; this script discovers the tags by grepping the whole src/
# tree (the annotation set is the source of truth — no hard-coded file list
# or loop count), compiles each tagged file exactly as the release build
# does (-O3), and checks gcc's -fopt-info-vec report for a "loop
# vectorized" line at each tagged line number. A tag with no report fails
# the build — a silent regression to a scalar loop is a multi-x slowdown on
# every mining/explanation scan.
#
# Tag rules, enforced here:
#   * the tag is `// vec-hot` at end of line (prose mentions elsewhere on a
#     line don't count);
#   * it must sit on the `for` line itself, or the line-number match against
#     the vectorizer report would silently check the wrong loop;
#   * it must live in a .cc file (a header loop reports under the file that
#     includes it, so its line numbers cannot be checked this way).
#
# Usage: tools/check_vectorization.sh [compiler]

set -uo pipefail
cd "$(dirname "$0")/.."

CXX="${1:-${CXX:-g++}}"
FLAGS=(-O3 -std=c++20 -Isrc -c -o /dev/null)

if ! "${CXX}" --version >/dev/null 2>&1; then
  echo "error: compiler '${CXX}' not found" >&2
  exit 2
fi

# Tree-wide tag discovery: `file:line` pairs for every end-of-line tag.
mapfile -t tagged < <(grep -rnE '// vec-hot[[:space:]]*$' src \
                        --include='*.cc' --include='*.h' --include='*.hpp' \
                      | cut -d: -f1,2)
if [[ ${#tagged[@]} -eq 0 ]]; then
  echo "error: no '// vec-hot' annotations found under src/" >&2
  exit 2
fi

# Placement cross-check before any compilation.
bad=0
for entry in "${tagged[@]}"; do
  file="${entry%%:*}"
  line="${entry##*:}"
  text="$(sed -n "${line}p" "${file}")"
  if [[ "${file}" != *.cc ]]; then
    echo "FAIL: ${file}:${line}: vec-hot tag in a header — move it to the"
    echo "      .cc loop; header line numbers don't appear in the report"
    bad=$((bad + 1))
  elif ! grep -qE 'for[[:space:]]*\(' <<< "${text}"; then
    echo "FAIL: ${file}:${line}: vec-hot tag is not on a 'for' line:"
    echo "      ${text}"
    bad=$((bad + 1))
  fi
done
if [[ ${bad} -gt 0 ]]; then
  echo "${bad} misplaced vec-hot tag(s)" >&2
  exit 1
fi

mapfile -t files < <(printf '%s\n' "${tagged[@]}" | cut -d: -f1 | sort -u)

report="$(mktemp)"
trap 'rm -f "${report}"' EXIT

failures=0
total=0
for src in "${files[@]}"; do
  if ! "${CXX}" "${FLAGS[@]}" -fopt-info-vec-optimized "${src}" 2> "${report}"; then
    echo "error: ${src} failed to compile" >&2
    cat "${report}" >&2
    exit 2
  fi
  base="$(basename "${src}")"
  for entry in "${tagged[@]}"; do
    [[ "${entry%%:*}" == "${src}" ]] || continue
    line="${entry##*:}"
    total=$((total + 1))
    if grep -Eq "${base}:${line}:[0-9]+: optimized: loop vectorized" "${report}"; then
      echo "ok:   ${src}:${line} vectorized"
    else
      echo "FAIL: ${src}:${line} tagged vec-hot but not vectorized:"
      echo "      $(sed -n "${line}p" "${src}" | sed 's/^[[:space:]]*//')"
      failures=$((failures + 1))
      echo "      --- compiler missed-vectorization report for this loop ---"
      "${CXX}" "${FLAGS[@]}" -fopt-info-vec-missed "${src}" 2>&1 \
        | grep -E "${base}:${line}:" | head -8 | sed 's/^/      /'
    fi
  done
done

if [[ ${failures} -gt 0 ]]; then
  echo ""
  echo "${failures} of ${total} vec-hot loop(s) failed to vectorize" >&2
  exit 1
fi
echo "all ${total} vec-hot loops vectorized (discovered from ${#files[@]} file(s))"
