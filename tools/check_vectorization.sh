#!/usr/bin/env bash
# Asserts that every hot loop in the block/morsel kernel layer actually
# auto-vectorizes (DESIGN.md §14). Hot loops are tagged with a `// vec-hot`
# comment on the `for` line in src/relational/kernels.cc; this script
# compiles the file exactly as the release build does (-O3) and checks gcc's
# -fopt-info-vec report for a "loop vectorized" line at each tagged line
# number. A tag with no report fails the build — a silent regression to a
# scalar loop is a multi-x slowdown on every mining/explanation scan.
#
# Usage: tools/check_vectorization.sh [compiler]

set -uo pipefail
cd "$(dirname "$0")/.."

CXX="${1:-${CXX:-g++}}"
SRC="src/relational/kernels.cc"
FLAGS=(-O3 -std=c++20 -Isrc -c -o /dev/null)

if ! "${CXX}" --version >/dev/null 2>&1; then
  echo "error: compiler '${CXX}' not found" >&2
  exit 2
fi

# Tagged line numbers, from the source of truth: the annotations themselves.
# Require a `for` on the same line so prose mentions of the tag don't count.
mapfile -t hot_lines < <(grep -nE 'for \(.*// vec-hot' "${SRC}" | cut -d: -f1)
if [[ ${#hot_lines[@]} -eq 0 ]]; then
  echo "error: no '// vec-hot' annotations found in ${SRC}" >&2
  exit 2
fi

report="$(mktemp)"
trap 'rm -f "${report}"' EXIT
if ! "${CXX}" "${FLAGS[@]}" -fopt-info-vec-optimized "${SRC}" 2> "${report}"; then
  echo "error: ${SRC} failed to compile" >&2
  cat "${report}" >&2
  exit 2
fi

failures=0
for line in "${hot_lines[@]}"; do
  if grep -Eq "kernels\.cc:${line}:[0-9]+: optimized: loop vectorized" "${report}"; then
    echo "ok:   ${SRC}:${line} vectorized"
  else
    echo "FAIL: ${SRC}:${line} tagged vec-hot but not vectorized"
    failures=$((failures + 1))
  fi
done

if [[ ${failures} -gt 0 ]]; then
  echo ""
  echo "--- compiler missed-vectorization report (why each loop was skipped) ---"
  "${CXX}" "${FLAGS[@]}" -fopt-info-vec-missed "${SRC}" 2>&1 | grep -E 'kernels\.cc' | head -60
  echo ""
  echo "${failures} vec-hot loop(s) failed to vectorize" >&2
  exit 1
fi
echo "all ${#hot_lines[@]} vec-hot loops vectorized"
