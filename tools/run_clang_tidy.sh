#!/usr/bin/env bash
# clang-tidy driver for CAPE (config: .clang-tidy at the repo root).
#
# Usage:
#   tools/run_clang_tidy.sh                 # all of src/
#   tools/run_clang_tidy.sh --changed [REF] # only files changed vs the
#                                           # merge-base of REF and HEAD
#                                           # (default REF: origin/main,
#                                           # falling back to HEAD~1)
#   tools/run_clang_tidy.sh FILE...         # specific files
#
# Environment:
#   CLANG_TIDY  clang-tidy binary (default: clang-tidy on PATH)
#   BUILD_DIR   compile-commands build dir (default: build-tidy; configured
#               on demand as a library-only build so GTest/benchmark are not
#               required)
#
# Exits 2 with a clear message when clang-tidy is not installed — the CI
# `lint` job installs it; locally `apt install clang-tidy` (or equivalent).
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${BUILD_DIR:-build-tidy}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: '$CLANG_TIDY' not found on PATH." >&2
  echo "Install clang-tidy (e.g. 'apt install clang-tidy') or set CLANG_TIDY." >&2
  exit 2
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: configuring $BUILD_DIR for compile_commands.json" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCAPE_BUILD_TESTS=OFF -DCAPE_BUILD_BENCHMARKS=OFF \
    -DCAPE_BUILD_EXAMPLES=OFF >/dev/null
fi

declare -a files=()
if [[ $# -ge 1 && "$1" == "--changed" ]]; then
  ref="${2:-}"
  if [[ -z "$ref" ]]; then
    if git rev-parse --verify origin/main >/dev/null 2>&1; then
      ref=origin/main
    else
      ref=HEAD~1
    fi
  fi
  # Diff against the merge-base, not REF itself: on a PR branch, REF
  # (e.g. origin/main) may have advanced past the fork point, and a direct
  # diff would drag in files *other* people changed on main — failing the
  # lint job on code this branch never touched.
  base="$(git merge-base "$ref" HEAD 2>/dev/null || echo "$ref")"
  while IFS= read -r f; do
    [[ "$f" == src/*.cc ]] && [[ -f "$f" ]] && files+=("$f")
  done < <(git diff --name-only "$base" -- 'src/*.cc')
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "run_clang_tidy.sh: no changed src/*.cc files vs merge-base of $ref — nothing to do"
    exit 0
  fi
elif [[ $# -ge 1 ]]; then
  files=("$@")
else
  while IFS= read -r f; do
    files+=("$f")
  done < <(find src -name '*.cc' | sort)
fi

echo "run_clang_tidy.sh: ${#files[@]} file(s), build dir $BUILD_DIR"
# -p points at compile_commands.json; clang-tidy picks up .clang-tidy from
# the source tree. Exit status is clang-tidy's own: nonzero on errors (or on
# warnings when WarningsAsErrors promotes them).
"$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${files[@]}"
echo "run_clang_tidy.sh: clean"
